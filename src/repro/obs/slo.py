"""SLO monitoring: rolling windows, error budgets, multi-window burn rates.

An objective says "at least *target* of requests must be good" over a
rolling window; the **burn rate** is how fast the error budget
(``1 - target``) is being spent: ``bad_fraction / (1 - target)``.  Burn
1.0 spends exactly the budget; burn 10 exhausts a day's budget in ~2.4
hours.  Following the multi-window practice, an objective *fires* only
when the burn is elevated in **every** window -- the short window makes
the alert responsive, the long window stops a single blip from paging.

:class:`SLOMonitor` keeps per-objective good/bad counts in coarse time
buckets (O(buckets) memory, O(1) amortised per request) and evaluates to
a plain dict the service folds into ``health_snapshot()``:

``{"status": ok|warn|degraded, "firing": [...], "objectives": {...}}``

The clock is injectable so tests can march time deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "Objective",
    "DEFAULT_OBJECTIVES",
    "SLOMonitor",
]


@dataclass(frozen=True)
class Objective:
    """One service-level objective.

    *kind* selects what makes a request "bad":

    - ``availability``: any error.
    - ``latency``: latency above *latency_threshold_ms*.
    - ``degraded``: a degraded (partial-shard) answer.
    """

    name: str
    kind: str
    target: float
    latency_threshold_ms: "float | None" = None

    def is_bad(self, *, ok: bool, latency_ms: float, degraded: bool) -> bool:
        if self.kind == "availability":
            return not ok
        if self.kind == "latency":
            threshold = self.latency_threshold_ms or 0.0
            return latency_ms > threshold
        if self.kind == "degraded":
            return degraded
        raise ValueError(f"unknown objective kind: {self.kind!r}")


DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective(name="availability", kind="availability", target=0.999),
    Objective(
        name="latency_p99", kind="latency", target=0.99, latency_threshold_ms=5000.0
    ),
    Objective(name="degraded_rate", kind="degraded", target=0.999),
)

#: (short, long) rolling windows in seconds.
DEFAULT_WINDOWS_S: tuple[float, ...] = (60.0, 600.0)

#: Burn thresholds: >= WARN_BURN in all windows fires "warn";
#: >= PAGE_BURN in all windows escalates to "degraded".
WARN_BURN = 1.0
PAGE_BURN = 10.0

#: An objective needs at least this many requests in a window before it
#: may fire -- stops a single bad request in an idle service from paging.
MIN_EVENTS = 5


class _WindowCounts:
    """Good/bad counts over one rolling window, in coarse time buckets.

    The window is divided into *buckets* slots; each ``observe`` lands in
    the slot for "now" and slots older than the window are zeroed lazily.
    Totals are therefore accurate to one bucket's width, which is all a
    burn-rate alert needs.
    """

    __slots__ = ("window_s", "_bucket_s", "_slots", "_stamps", "_clock")

    def __init__(self, window_s: float, buckets: int = 12, clock=time.monotonic):
        self.window_s = float(window_s)
        self._bucket_s = self.window_s / buckets
        self._slots: list[dict] = [self._empty() for _ in range(buckets)]
        self._stamps: list[int] = [-1] * buckets
        self._clock = clock

    @staticmethod
    def _empty() -> dict:
        return {"total": 0, "bad": {}}

    def _slot(self) -> dict:
        epoch = int(self._clock() / self._bucket_s)
        index = epoch % len(self._slots)
        if self._stamps[index] != epoch:
            self._slots[index] = self._empty()
            self._stamps[index] = epoch
        return self._slots[index]

    def observe(self, bad_objectives: list) -> None:
        slot = self._slot()
        slot["total"] += 1
        bad = slot["bad"]
        for name in bad_objectives:
            bad[name] = bad.get(name, 0) + 1

    def totals(self) -> dict:
        """``{"total": n, "bad": {objective: n}}`` over the live window."""
        epoch = int(self._clock() / self._bucket_s)
        total = 0
        bad: dict = {}
        for index, stamp in enumerate(self._stamps):
            if stamp < 0 or epoch - stamp >= len(self._slots):
                continue  # never written, or aged out of the window
            slot = self._slots[index]
            total += slot["total"]
            for name, count in slot["bad"].items():
                bad[name] = bad.get(name, 0) + count
        return {"total": total, "bad": bad}


class SLOMonitor:
    """Multi-window burn-rate evaluation over a stream of request facts.

    Feed every finished request to :meth:`observe`; read
    :meth:`evaluate` whenever health is polled.  Thread-safe.
    """

    def __init__(
        self,
        objectives: "tuple[Objective, ...]" = DEFAULT_OBJECTIVES,
        windows_s: "tuple[float, ...]" = DEFAULT_WINDOWS_S,
        *,
        clock=time.monotonic,
    ) -> None:
        self.objectives = tuple(objectives)
        self.windows_s = tuple(sorted(windows_s))
        self._windows = [_WindowCounts(w, clock=clock) for w in self.windows_s]
        self._lock = threading.Lock()

    def observe(self, *, ok: bool, latency_ms: float, degraded: bool) -> None:
        bad = [
            objective.name
            for objective in self.objectives
            if objective.is_bad(ok=ok, latency_ms=latency_ms, degraded=degraded)
        ]
        with self._lock:
            for window in self._windows:
                window.observe(bad)

    def evaluate(self) -> dict:
        """The health document: overall status, firing objectives, and
        per-objective burn rates per window."""
        with self._lock:
            totals = [window.totals() for window in self._windows]
        objectives: dict = {}
        firing: list = []
        for objective in self.objectives:
            budget = max(1e-9, 1.0 - objective.target)
            burns: dict = {}
            eligible = True
            min_burn = float("inf")
            for window_s, window_totals in zip(self.windows_s, totals):
                total = window_totals["total"]
                bad = window_totals["bad"].get(objective.name, 0)
                burn = (bad / total) / budget if total else 0.0
                burns[f"{int(window_s)}s"] = round(burn, 3)
                if total < MIN_EVENTS:
                    eligible = False
                min_burn = min(min_burn, burn)
            doc = {"target": objective.target, "burn": burns}
            if objective.latency_threshold_ms is not None:
                doc["latency_threshold_ms"] = objective.latency_threshold_ms
            objectives[objective.name] = doc
            if eligible and min_burn >= WARN_BURN:
                severity = "degraded" if min_burn >= PAGE_BURN else "warn"
                firing.append(
                    {"objective": objective.name, "severity": severity, "burn": burns}
                )
        if any(entry["severity"] == "degraded" for entry in firing):
            status = "degraded"
        elif firing:
            status = "warn"
        else:
            status = "ok"
        return {"status": status, "firing": firing, "objectives": objectives}
