"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

The registry is the process-wide companion of :mod:`repro.obs.trace`:
spans answer "where did *this request's* time go", metrics answer "what
has this process been doing" -- segment decodes by format, stats-cache
hits, posting-probe dispatch counts, per-op latency quantiles.

Design constraints, in order:

* **Exact totals under contention.**  Every instrument takes its own
  ``threading.Lock`` for mutation, so N threads hammering one counter
  lose nothing (pinned by the concurrency test).  Reads are advisory
  snapshots.
* **Bounded memory.**  Histograms are fixed geometric buckets -- no
  reservoir, no per-observation storage -- so a long-running service's
  latency tracking is O(buckets) forever.  Quantiles are nearest-rank
  over the cumulative bucket counts: the reported value is the upper
  bound of the bucket holding the rank-th observation (clamped to the
  exact observed min/max), so ``p50 <= p95 <= max`` always holds and the
  error is bounded by the bucket's width.
* **Mergeable snapshots.**  ``snapshot()`` documents are plain JSON;
  :func:`merge_snapshots` folds two of them (counter sums, bucket sums,
  min/max folds, quantiles recomputed from the merged buckets), which is
  what a scatter-gather tier will need.

A module-level default registry carries the library-wide instruments
(store/engine/kernel); components with private lifecycles (one
``ServiceStats`` per service) hold their own ``MetricsRegistry``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from math import ceil, inf

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_SIZE_BUCKETS",
    "merge_snapshots",
    "global_registry",
    "reset_global_registry",
    "counter",
    "gauge",
    "histogram",
]

#: Geometric latency buckets (upper bounds, milliseconds): ~50us to 10s.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Power-of-two buckets for count-valued observations (probe sizes,
#: component sizes).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = tuple(
    float(1 << p) for p in range(0, 21, 2)
)


class Counter:
    """A monotonic counter (exact under concurrent increments)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (set/add; last write wins on snapshot)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram (see the module docstring's quantile
    contract).  *bounds* are inclusive upper bounds; one overflow bucket
    is appended automatically."""

    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds}")
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = inf
        self._max = -inf

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # The two unit-carrying spellings instrumented code uses.
    def observe_ms(self, ms: float) -> None:
        self.observe(ms)

    def observe_seconds(self, seconds: float) -> None:
        self.observe(seconds * 1000.0)

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the bucket counts (0 when empty)."""
        with self._lock:
            return _bucket_quantile(
                self.bounds, self._counts, self._count, self._min, self._max, q
            )

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            low = self._min if count else 0.0
            high = self._max if count else 0.0
        return {
            "count": count,
            "sum": round(total, 6),
            "min": round(low, 6),
            "max": round(high, 6),
            "p50": round(_bucket_quantile(self.bounds, counts, count, low, high, 0.50), 6),
            "p95": round(_bucket_quantile(self.bounds, counts, count, low, high, 0.95), 6),
            "p99": round(_bucket_quantile(self.bounds, counts, count, low, high, 0.99), 6),
            "buckets": {
                **{str(bound): counts[i] for i, bound in enumerate(self.bounds)},
                "+inf": counts[-1],
            },
        }


def _bucket_quantile(
    bounds: tuple[float, ...],
    counts: list[int],
    count: int,
    low: float,
    high: float,
    q: float,
) -> float:
    if count <= 0:
        return 0.0
    rank = max(1, min(count, ceil(q * count)))  # nearest-rank, 1-based
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= rank:
            value = bounds[i] if i < len(bounds) else high
            return min(high, max(low, value))
    return high  # pragma: no cover - cumulative always reaches count


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted together."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter())
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge())
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(bounds))
        return instrument

    def histograms(self, prefix: str = "") -> dict[str, Histogram]:
        """The histograms whose name starts with *prefix* (sorted)."""
        return {
            name: self._histograms[name]
            for name in sorted(self._histograms)
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """A JSON-friendly point-in-time view of every instrument."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests; benchmarks isolating runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_snapshots(a: dict, b: dict) -> dict:
    """Fold two :meth:`MetricsRegistry.snapshot` documents: counters and
    bucket counts sum, gauges take *b* (latest writer), histogram
    quantiles are recomputed from the merged buckets."""
    counters = dict(a.get("counters", {}))
    for name, value in b.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = {**a.get("gauges", {}), **b.get("gauges", {})}
    histograms = dict(a.get("histograms", {}))
    for name, snap_b in b.get("histograms", {}).items():
        snap_a = histograms.get(name)
        histograms[name] = snap_b if snap_a is None else _merge_histogram(snap_a, snap_b)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _merge_histogram(a: dict, b: dict) -> dict:
    buckets_a, buckets_b = a["buckets"], b["buckets"]
    keys = list(buckets_a)  # snapshot bucket order: bounds ascending, +inf last
    buckets = {key: buckets_a[key] + buckets_b.get(key, 0) for key in keys}
    for key in buckets_b:
        if key not in buckets:
            buckets[key] = buckets_b[key]
    count = a["count"] + b["count"]
    if count == 0:
        low = high = 0.0
    elif a["count"] == 0:
        low, high = b["min"], b["max"]
    elif b["count"] == 0:
        low, high = a["min"], a["max"]
    else:
        low, high = min(a["min"], b["min"]), max(a["max"], b["max"])
    bounds = tuple(float(key) for key in buckets if key != "+inf")
    counts = [buckets[key] for key in buckets]
    return {
        "count": count,
        "sum": round(a["sum"] + b["sum"], 6),
        "min": round(low, 6),
        "max": round(high, 6),
        "p50": round(_bucket_quantile(bounds, counts, count, low, high, 0.50), 6),
        "p95": round(_bucket_quantile(bounds, counts, count, low, high, 0.95), 6),
        "p99": round(_bucket_quantile(bounds, counts, count, low, high, 0.99), 6),
        "buckets": buckets,
    }


# ----------------------------------------------------------------------
# The process-wide default registry (store / engine / kernel instruments)
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL


def reset_global_registry() -> None:
    """Clear the process-wide instruments (test isolation)."""
    _GLOBAL.reset()


def counter(name: str) -> Counter:
    """The process-wide counter *name* (created on first use)."""
    return _GLOBAL.counter(name)


def gauge(name: str) -> Gauge:
    return _GLOBAL.gauge(name)


def histogram(
    name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
) -> Histogram:
    return _GLOBAL.histogram(name, bounds)
