"""Telemetry export: rotating JSONL sinks and Prometheus text rendering.

:mod:`repro.obs.trace` and :mod:`repro.obs.metrics` keep everything in
memory; this module is the durable edge.  Three pieces:

* :func:`rotate_file` -- size-bounded keep-N rotation shared by every
  JSONL sink in the service tier (trace sink, postmortems, exporter).
* :func:`prometheus_text` / :func:`parse_prometheus_text` -- render a
  :meth:`MetricsRegistry.snapshot` document in the Prometheus text
  exposition format (and parse it back, for the CI round-trip smoke).
* :class:`TelemetryExporter` -- a background daemon thread that flushes
  periodic metrics snapshots plus completed span trees to a rotating
  JSONL file.  The hot path only ever does an O(1) deque append
  (:meth:`offer_trace`); all I/O happens on the flusher thread.

Snapshots are wrapped in :func:`metrics_document` envelopes carrying
process/shard *identity*, so documents emitted by sharded workers can be
folded with the documented :func:`repro.obs.metrics.merge_snapshots`
semantics without losing track of who reported what.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
from collections import deque
from pathlib import Path

from . import metrics

__all__ = [
    "rotate_file",
    "snapshot_identity",
    "metrics_document",
    "prometheus_text",
    "parse_prometheus_text",
    "TelemetryExporter",
]


def rotate_file(path: Path, max_bytes: int | None, keep: int = 3) -> bool:
    """Shift *path* into numbered backups when it exceeds *max_bytes*.

    ``path -> path.1 -> path.2 -> ... -> path.keep`` with the oldest
    dropped.  Returns True when a rotation happened.  The caller holds
    whatever lock serialises writers to *path*; this function only moves
    files.  *max_bytes* None (or <= 0) disables rotation.
    """
    if max_bytes is None or max_bytes <= 0:
        return False
    try:
        size = path.stat().st_size
    except OSError:
        return False
    if size < max_bytes:
        return False
    keep = max(1, int(keep))
    oldest = path.with_name(f"{path.name}.{keep}")
    if oldest.exists():
        oldest.unlink()
    for index in range(keep - 1, 0, -1):
        older = path.with_name(f"{path.name}.{index}")
        if older.exists():
            older.rename(path.with_name(f"{path.name}.{index + 1}"))
    path.rename(path.with_name(f"{path.name}.1"))
    return True


def snapshot_identity(role: str, shard: "str | None" = None) -> dict:
    """Who produced a snapshot: pid + host + role (+ shard path)."""
    identity = {"pid": os.getpid(), "host": socket.gethostname(), "role": role}
    if shard is not None:
        identity["shard"] = str(shard)
    return identity


def metrics_document(snapshot: dict, identity: dict, ts: "float | None" = None) -> dict:
    """The JSONL envelope for one exported metrics snapshot."""
    return {
        "kind": "metrics",
        "ts": time.time() if ts is None else ts,
        "identity": dict(identity),
        "metrics": snapshot,
    }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(prefix: str, name: str) -> str:
    return _NAME_SANITIZE.sub("_", prefix + name)


def _fmt_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def prometheus_text(snapshot: dict, prefix: str = "repro_") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` document as Prometheus
    text exposition format (version 0.0.4).

    Counters and gauges become single samples; histograms become
    cumulative ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``,
    which is exactly what a Prometheus scraper (or promtool) expects.
    Extra snapshot keys (e.g. ``identity`` on worker documents) are
    ignored, mirroring :func:`repro.obs.metrics.merge_snapshots`.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt_float(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        doc = snapshot["histograms"][name]
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in doc.get("buckets", {}).items():
            cumulative += count
            le = "+Inf" if bound == "+inf" else _fmt_float(float(bound))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt_float(doc.get('sum', 0.0))}")
        lines.append(f"{metric}_count {doc.get('count', 0)}")
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$'
)


def parse_prometheus_text(text: str) -> dict:
    """Parse :func:`prometheus_text` output back into
    ``{name: value}`` for plain samples and
    ``{name: {label_string: value}}`` for labelled ones.

    This is the verifier half of the ``obs-export-smoke`` round trip --
    deliberately strict about the subset this module emits rather than a
    general exposition-format parser.
    """
    samples: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        name, labels = match.group("name"), match.group("labels")
        if labels is None:
            samples[name] = value
        else:
            samples.setdefault(name, {})[labels] = value
    return samples


# ----------------------------------------------------------------------
# Background exporter
# ----------------------------------------------------------------------
class TelemetryExporter:
    """Flush metrics snapshots and completed span trees to rotating JSONL.

    The request path calls :meth:`offer_trace` -- a lock-free-ish bounded
    ``deque.append`` -- and nothing else; a daemon thread wakes every
    *interval_s* seconds, snapshots *registries* (callables returning
    snapshot documents), drains the trace queue, and appends one JSON
    document per line to *path*, rotating per :func:`rotate_file`.

    ``close()`` stops the thread and performs a final flush so short
    lived processes (tests, benchmarks) never lose the last interval.
    """

    def __init__(
        self,
        path: "Path | str",
        *,
        interval_s: float = 30.0,
        identity: "dict | None" = None,
        registries: "tuple | list | None" = None,
        max_bytes: "int | None" = 64 * 1024 * 1024,
        keep: int = 3,
        max_queued_traces: int = 512,
    ) -> None:
        self.path = Path(path)
        self.interval_s = max(0.05, float(interval_s))
        self.identity = dict(identity) if identity else snapshot_identity("service")
        self._registries = list(
            registries
            if registries is not None
            else [lambda: metrics.global_registry().snapshot()]
        )
        self._max_bytes = max_bytes
        self._keep = keep
        self._traces: deque = deque(maxlen=max_queued_traces)
        self._dropped_traces = 0
        self._io_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self.flush_count = 0

    # -- hot-path entry ----------------------------------------------------
    def offer_trace(self, tree: dict, summary: "dict | None" = None) -> None:
        """Queue one finished span tree for the next flush (O(1); oldest
        queued tree is dropped when the bounded queue is full)."""
        if not tree:
            return
        if len(self._traces) == self._traces.maxlen:
            self._dropped_traces += 1
        self._traces.append({"tree": tree, "summary": summary})

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "TelemetryExporter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="telemetry-exporter", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        self.flush()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.flush()
            except Exception:  # noqa: BLE001 - exporter must never kill the host
                pass

    # -- flushing ------------------------------------------------------------
    def flush(self) -> int:
        """Write one metrics document per registry plus every queued
        trace; returns the number of lines written."""
        now = time.time()
        documents: list[dict] = []
        for registry in self._registries:
            try:
                snapshot = registry()
            except Exception:  # noqa: BLE001 - a dead registry must not stop others
                continue
            if snapshot:
                documents.append(metrics_document(snapshot, self.identity, ts=now))
        while self._traces:
            try:
                item = self._traces.popleft()
            except IndexError:  # pragma: no cover - racing offer_trace
                break
            documents.append(
                {
                    "kind": "trace",
                    "ts": now,
                    "identity": self.identity,
                    "summary": item.get("summary"),
                    "trace": item["tree"],
                }
            )
        if self._dropped_traces:
            documents.append(
                {
                    "kind": "dropped_traces",
                    "ts": now,
                    "identity": self.identity,
                    "count": self._dropped_traces,
                }
            )
            self._dropped_traces = 0
        if not documents:
            return 0
        payload = "".join(json.dumps(doc, sort_keys=True) + "\n" for doc in documents)
        with self._io_lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            rotate_file(self.path, self._max_bytes, self._keep)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(payload)
        self.flush_count += 1
        return len(documents)
