"""Request-scoped tracing: nestable spans forming a per-request tree.

One :class:`Tracer` lives for one traced request (or one traced CLI run)
and collects a tree of :class:`Span` nodes -- name, wall time, thread CPU
time, counters, children.  Instrumented code never checks whether tracing
is on: the module-level :func:`span` helper looks up the *ambient* tracer
of the current thread and, when there is none, returns a shared no-op
context manager -- a single module-level singleton, so a disabled hot
path pays one function call and one ``threading.local`` read, with zero
allocation.

Cross-thread nesting is explicit.  Thread-local ambience does not follow
work submitted to a pool, so the boundary that hands a request to a
worker wraps the work in :func:`activate`::

    with activate(tracer, parent=tracer.root):
        ...  # spans opened here nest under the request root

Accumulated phases (e.g. the FD kernel's interleaved per-component
closure/subsume loop) cannot open a span per iteration without paying an
allocation in a hot loop; they keep their local ``perf_counter``
accumulation and emit one completed child afterwards with
:meth:`Tracer.record`.

Everything here is stdlib-only and thread-safe: child lists are appended
under the tracer's lock, so workers may attach spans while the root is
still open on the caller's thread.
"""

from __future__ import annotations

import threading
import time
import uuid

__all__ = [
    "Span",
    "Tracer",
    "span",
    "record",
    "current_tracer",
    "activate",
    "format_trace",
    "new_trace_id",
    "NOOP_SPAN",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char request identifier.  Minted once per traced
    request -- by the furthest-upstream party (the wire client, or the
    service for direct callers) -- and carried through every process the
    request touches, so the client tree, the server tree and each shard
    worker's tree all stamp the same id."""
    return uuid.uuid4().hex[:16]


class _NoopSpan:
    """The shared do-nothing span: what :func:`span` hands out when no
    tracer is ambient.  One module-level instance, never allocated per
    call."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def add(self, **counters: object) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One node of a trace tree (see the module docstring)."""

    __slots__ = (
        "name", "parent", "children", "counters",
        "wall_s", "cpu_s", "_wall0", "_cpu0", "closed",
    )

    def __init__(
        self, name: str, parent: "Span | None" = None, counters: dict | None = None
    ):
        self.name = name
        self.parent = parent
        self.children: list[Span] = []
        self.counters: dict = dict(counters) if counters else {}
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self.closed = False

    def _start(self) -> None:
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()

    def _stop(self) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.thread_time() - self._cpu0
        self.closed = True

    def add(self, **counters) -> "Span":
        """Bump counters: numeric values accumulate, anything else is set."""
        own = self.counters
        for key, value in counters.items():
            existing = own.get(key)
            if isinstance(existing, (int, float)) and isinstance(value, (int, float)):
                own[key] = existing + value
            else:
                own[key] = value
        return self

    def child(self, name: str) -> "Span | None":
        """The first direct child named *name* (None when absent)."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    @property
    def self_wall_s(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    def to_dict(self) -> dict:
        """JSON-safe tree: times in milliseconds, counters verbatim."""
        return {
            "name": self.name,
            "wall_ms": round(self.wall_s * 1000, 3),
            "cpu_ms": round(self.cpu_s * 1000, 3),
            "self_ms": round(self.self_wall_s * 1000, 3),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.wall_s * 1000:.3f}ms, {len(self.children)} children)"


class _SpanContext:
    """The context manager :meth:`Tracer.span` returns: parent resolution
    and attachment happen at ``__enter__`` so the span nests under
    whatever is current *when the block starts*, not when it was built."""

    __slots__ = ("_tracer", "_name", "_counters", "_span")

    def __init__(self, tracer: "Tracer", name: str, counters: dict):
        self._tracer = tracer
        self._name = name
        self._counters = counters
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._counters)
        return self._span

    def __exit__(self, exc_type, exc_value, exc_tb) -> bool:
        span = self._span
        assert span is not None
        if exc_type is not None:
            span.counters["error"] = exc_type.__name__
        self._tracer._close(span)
        return False


class Tracer:
    """One trace tree under construction, usable from many threads.

    The first span opened (on any thread) becomes the root; later spans
    nest under the current thread's innermost open span, falling back to
    the thread's *anchor* (set by :func:`activate` at pool boundaries)
    and then the root.

    *trace_id* is the distributed-request identifier: pass the id minted
    upstream (wire envelope, scatter payload) to adopt it, or omit it to
    mint a fresh one.  :meth:`to_dict` stamps it on the root node.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.root: Span | None = None
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- per-thread state ------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span on this thread (anchor/root fallback)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        anchor = getattr(self._local, "anchor", None)
        return anchor if anchor is not None else self.root

    # -- span construction ----------------------------------------------
    def span(self, name: str, **counters) -> _SpanContext:
        """A context manager timing one nested phase."""
        return _SpanContext(self, name, counters)

    def _open(self, name: str, counters: dict) -> Span:
        parent = self.current
        span = Span(name, parent=parent, counters=counters)
        with self._lock:
            if parent is None:
                if self.root is None:
                    self.root = span
                else:  # a second top-level span: keep one tree
                    span.parent = self.root
                    self.root.children.append(span)
            else:
                parent.children.append(span)
        self._stack().append(span)
        span._start()
        return span

    def _close(self, span: Span) -> None:
        span._stop()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def record(
        self, name: str, wall_s: float = 0.0, cpu_s: float = 0.0, **counters
    ) -> Span:
        """Attach an already-measured child span (explicit duration) --
        how accumulated phase totals enter the tree without a span
        allocation inside the hot loop that measured them."""
        parent = self.current
        span = Span(name, parent=parent, counters=counters)
        span.wall_s = wall_s
        span.cpu_s = cpu_s
        span.closed = True
        with self._lock:
            if parent is None:
                if self.root is None:
                    self.root = span
                else:
                    span.parent = self.root
                    self.root.children.append(span)
            else:
                parent.children.append(span)
        return span

    def activate(self, parent: Span | None = None) -> "activate":
        """Make this tracer ambient on the current thread (see
        :func:`activate`)."""
        return activate(self, parent)

    def attach_tree(self, node: dict, parent: Span | None = None) -> Span | None:
        """Graft an already-finished :meth:`Span.to_dict` tree under
        *parent* (default: this thread's current span, then the root).

        This is the *process*-boundary hand-off: a pool worker in another
        process runs its own local tracer (span objects cannot cross the
        pickle boundary open), ships the finished tree back as a dict,
        and the driver re-attaches it here so a scatter-gather request
        still renders as one tree.  Times and counters are taken verbatim
        from the dict; children recurse."""
        if not node:
            return None
        if parent is None:
            parent = self.current
        span = Span(str(node.get("name", "?")), parent=parent)
        span.wall_s = float(node.get("wall_ms", 0.0)) / 1000.0
        span.cpu_s = float(node.get("cpu_ms", 0.0)) / 1000.0
        span.counters = dict(node.get("counters") or {})
        span.closed = True
        with self._lock:
            if parent is None:
                if self.root is None:
                    self.root = span
                else:
                    span.parent = self.root
                    self.root.children.append(span)
            else:
                parent.children.append(span)
        for child in node.get("children") or []:
            self.attach_tree(child, parent=span)
        return span

    def to_dict(self) -> dict:
        """The finished tree (empty dict when nothing was recorded).

        The root node carries the distributed ``trace_id`` so every
        exported tree -- JSONL sink, postmortem, wire response -- can be
        correlated back to the request that produced it."""
        if self.root is None:
            return {}
        document = self.root.to_dict()
        document["trace_id"] = self.trace_id
        return document


# ----------------------------------------------------------------------
# Ambient tracer: thread-local, explicit hand-off across pools
# ----------------------------------------------------------------------
_AMBIENT = threading.local()


def current_tracer() -> Tracer | None:
    """The tracer ambient on this thread (None = tracing disabled here)."""
    return getattr(_AMBIENT, "tracer", None)


def span(name: str, **counters):
    """Open a span on the ambient tracer; the shared no-op when none.

    This is the one call instrumented code makes.  The disabled path is a
    ``threading.local`` read and a constant return -- no allocation.
    """
    tracer = getattr(_AMBIENT, "tracer", None)
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **counters)


def record(name: str, wall_s: float = 0.0, cpu_s: float = 0.0, **counters):
    """Attach a pre-measured child to the ambient tracer (no-op when
    tracing is disabled)."""
    tracer = getattr(_AMBIENT, "tracer", None)
    if tracer is None:
        return None
    return tracer.record(name, wall_s=wall_s, cpu_s=cpu_s, **counters)


class activate:
    """Context manager: make *tracer* ambient on this thread, with new
    top-level spans nesting under *parent* (default: the tracer's root).

    This is the pool-boundary hand-off: thread-local ambience does not
    follow submitted work, so the worker side of a queue/executor wraps
    its execution in ``activate(tracer, parent=...)`` to keep the request
    a single tree."""

    __slots__ = ("_tracer", "_parent", "_prev_tracer", "_prev_anchor")

    def __init__(self, tracer: Tracer, parent: Span | None = None):
        self._tracer = tracer
        self._parent = parent

    def __enter__(self) -> Tracer:
        self._prev_tracer = getattr(_AMBIENT, "tracer", None)
        _AMBIENT.tracer = self._tracer
        local = self._tracer._local
        self._prev_anchor = getattr(local, "anchor", None)
        local.anchor = self._parent if self._parent is not None else self._tracer.root
        return self._tracer

    def __exit__(self, *exc_info: object) -> bool:
        _AMBIENT.tracer = self._prev_tracer
        self._tracer._local.anchor = self._prev_anchor
        return False


# ----------------------------------------------------------------------
# Rendering (the CLI's `repro trace` / `--trace` output)
# ----------------------------------------------------------------------
def format_trace(node: dict, indent: str = "", last: bool = True) -> str:
    """Render a :meth:`Span.to_dict` tree as an indented text outline with
    cumulative and self times."""
    if not node:
        return "(empty trace)"
    lines: list[str] = []
    _format_node(node, "", True, True, lines)
    return "\n".join(lines)


def _format_node(
    node: dict, prefix: str, last: bool, is_root: bool, lines: list[str]
) -> None:
    connector = "" if is_root else ("└─ " if last else "├─ ")
    counters = node.get("counters") or {}
    shown = ", ".join(f"{k}={_fmt_value(v)}" for k, v in counters.items())
    timing = f"{node['wall_ms']:.1f}ms"
    if node.get("children"):
        timing += f" (self {node['self_ms']:.1f}ms)"
    line = f"{prefix}{connector}{node['name']}  {timing}" + (
        f"  [{shown}]" if shown else ""
    )
    if is_root and node.get("trace_id"):
        line += f"  (trace {node['trace_id']})"
    lines.append(line)
    children = node.get("children") or []
    if node.get("name") == "discover.scatter":
        # Scatter parents fan out one child per shard; render slowest
        # first (by self time) so shard skew is visible at a glance.
        children = sorted(
            children,
            key=lambda c: (-float(c.get("self_ms", 0.0)), str(c.get("name", ""))),
        )
    child_prefix = prefix if is_root else prefix + ("   " if last else "│  ")
    for i, child in enumerate(children):
        _format_node(child, child_prefix, i == len(children) - 1, False, lines)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
