"""Flight recorder: always-on request ring buffer + automatic postmortems.

A production incident is diagnosed from the requests *around* the bad
one, but always-on tracing of every request is exactly the overhead the
PR-7 discipline forbids.  The :class:`FlightRecorder` splits the
difference:

* Every request -- traced or not -- appends a small summary dict (op,
  lake version, latency, cache hit, degraded shards, error) to a bounded
  ring.  That is one deque append per request: near-zero cost, bounded
  memory, always running.
* When a request *trips* (errors, blows its deadline, exceeds a latency
  threshold, or comes back degraded) and a postmortem path is
  configured, the recorder dumps one JSONL document with the trigger
  reason, the tripping request's full span tree, and the recent ring
  contents -- the "what was happening just before" context an operator
  otherwise reconstructs by hand.

The service keeps tracing enabled whenever a postmortem path is set
(``wants_trace``), so the dump always has a tree to include; the
check_obs_overhead gate pins that the *disabled* configuration (no
postmortem path) stays within budget.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path

from .export import rotate_file

__all__ = ["FlightRecorder", "trip_reason"]

#: Error type names that indicate a blown deadline rather than a fault.
_DEADLINE_ERRORS = ("DeadlineExceeded",)


def trip_reason(summary: dict, latency_threshold_ms: "float | None") -> "str | None":
    """Why *summary* deserves a postmortem (None = healthy request).

    Precedence: deadline > error > degraded > latency -- the most
    specific explanation wins when several apply.
    """
    error = summary.get("error")
    if error in _DEADLINE_ERRORS:
        return "deadline"
    if error:
        return "error"
    if summary.get("degraded_shards"):
        return "degraded"
    latency = summary.get("latency_ms")
    if (
        latency_threshold_ms is not None
        and latency is not None
        and latency >= latency_threshold_ms
    ):
        return "latency"
    return None


class FlightRecorder:
    """Bounded ring of request summaries with postmortem capture.

    *capacity* bounds the ring; *postmortem_path* (optional) enables
    dumps, rotated at *postmortem_max_bytes* keeping
    *postmortem_keep* backups; *latency_threshold_ms* (optional) adds
    the slow-request trigger.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        postmortem_path: "Path | str | None" = None,
        latency_threshold_ms: "float | None" = None,
        postmortem_max_bytes: "int | None" = 16 * 1024 * 1024,
        postmortem_keep: int = 3,
    ) -> None:
        self._ring: deque = deque(maxlen=max(1, int(capacity)))
        self.postmortem_path = Path(postmortem_path) if postmortem_path else None
        self.latency_threshold_ms = latency_threshold_ms
        self._max_bytes = postmortem_max_bytes
        self._keep = postmortem_keep
        self._io_lock = threading.Lock()
        self.postmortem_count = 0

    @property
    def wants_trace(self) -> bool:
        """True when postmortems are enabled -- the service keeps a
        tracer alive per request so a trip always has a tree to dump."""
        return self.postmortem_path is not None

    def recent(self, n: "int | None" = None) -> list:
        """The most recent ring entries, oldest first."""
        entries = list(self._ring)
        return entries if n is None else entries[-n:]

    def observe(self, summary: dict, tree: "dict | None" = None) -> "str | None":
        """Ingest one finished request; returns the trip reason when a
        postmortem was written (None otherwise)."""
        ring_before = list(self._ring)
        self._ring.append(summary)
        reason = trip_reason(summary, self.latency_threshold_ms)
        if reason is None or self.postmortem_path is None:
            return None
        document = {
            "kind": "postmortem",
            "reason": reason,
            "ts": summary.get("ts"),
            "trace_id": summary.get("trace_id"),
            "summary": summary,
            "trace": tree or {},
            "ring": ring_before[-32:],
        }
        line = json.dumps(document, sort_keys=True) + "\n"
        with self._io_lock:
            self.postmortem_path.parent.mkdir(parents=True, exist_ok=True)
            rotate_file(self.postmortem_path, self._max_bytes, self._keep)
            with self.postmortem_path.open("a", encoding="utf-8") as handle:
                handle.write(line)
            self.postmortem_count += 1
        return reason
