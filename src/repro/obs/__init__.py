"""repro.obs -- pipeline-wide observability and production telemetry.

Five pieces, one discipline:

* :mod:`repro.obs.trace` -- request-scoped span trees with distributed
  trace ids.  Instrumented code calls ``trace.span("stage.phase",
  key=value)`` unconditionally; when no tracer is ambient the call
  returns a shared no-op singleton.
* :mod:`repro.obs.metrics` -- process-wide counters / gauges / fixed
  bucket histograms with mergeable JSON snapshots.
* :mod:`repro.obs.export` -- durable edges: rotating JSONL sinks, a
  background :class:`TelemetryExporter`, Prometheus text rendering.
* :mod:`repro.obs.recorder` -- the :class:`FlightRecorder` request ring
  with automatic postmortem dumps on error/deadline/latency/degraded.
* :mod:`repro.obs.slo` -- rolling-window multi-burn-rate
  :class:`SLOMonitor` feeding ``health_snapshot()``.

Instrumented modules import these as **modules** (``from repro.obs import
trace, metrics``) rather than importing the helpers by name, so the
overhead harness (``tools/check_obs_overhead.py``) can stub the helpers
globally for its baseline measurement.
"""

from . import export, metrics, recorder, slo, trace
from .export import (
    TelemetryExporter,
    metrics_document,
    parse_prometheus_text,
    prometheus_text,
    rotate_file,
    snapshot_identity,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    merge_snapshots,
)
from .recorder import FlightRecorder
from .slo import DEFAULT_OBJECTIVES, Objective, SLOMonitor
from .trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    activate,
    current_tracer,
    format_trace,
    new_trace_id,
)

__all__ = [
    "trace",
    "metrics",
    "export",
    "recorder",
    "slo",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "merge_snapshots",
    "TelemetryExporter",
    "metrics_document",
    "parse_prometheus_text",
    "prometheus_text",
    "rotate_file",
    "snapshot_identity",
    "FlightRecorder",
    "DEFAULT_OBJECTIVES",
    "Objective",
    "SLOMonitor",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "format_trace",
    "new_trace_id",
]
