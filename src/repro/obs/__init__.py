"""repro.obs -- pipeline-wide observability.

Two pieces, one discipline:

* :mod:`repro.obs.trace` -- request-scoped span trees.  Instrumented code
  calls ``trace.span("stage.phase", key=value)`` unconditionally; when no
  tracer is ambient the call returns a shared no-op singleton.
* :mod:`repro.obs.metrics` -- process-wide counters / gauges / fixed
  bucket histograms with mergeable JSON snapshots.

Instrumented modules import these as **modules** (``from repro.obs import
trace, metrics``) rather than importing the helpers by name, so the
overhead harness (``tools/check_obs_overhead.py``) can stub the helpers
globally for its baseline measurement.
"""

from . import metrics, trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    merge_snapshots,
)
from .trace import NOOP_SPAN, Span, Tracer, activate, current_tracer, format_trace

__all__ = [
    "trace",
    "metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "merge_snapshots",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "format_trace",
]
