"""Optional-acceleration gate: one place that decides whether numpy exists.

Everything in this library must run on the stdlib alone, so every
vectorized hot path (binary segment decode, posting probes, the FD
bitmask kernels) imports numpy through this module and keeps a
pure-Python twin.  ``np`` is the numpy module or ``None``; callers branch
on :data:`HAVE_NUMPY` (or on ``np is None``) exactly once, at dispatch
level -- never inside inner loops.

Tests and benchmarks may call :func:`set_numpy_enabled` to force the
pure-Python paths in-process (e.g. to pin vectorized == pure equivalence
or to measure both sides); the flag only gates *dispatch*, the numpy
module object stays importable either way.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every vectorized path
    import numpy as _numpy
except ImportError:  # pragma: no cover - the stdlib-only environment
    _numpy = None

__all__ = ["np", "HAVE_NUMPY", "numpy_enabled", "set_numpy_enabled"]

#: The numpy module, or ``None`` when unavailable (or force-disabled).
np = _numpy

#: Whether numpy was importable at all (independent of the enable flag).
HAVE_NUMPY = _numpy is not None


def numpy_enabled() -> bool:
    """True when vectorized paths should dispatch to numpy."""
    return np is not None


def set_numpy_enabled(enabled: bool) -> bool:
    """Force vectorized dispatch on/off in-process; returns the previous
    state.  Enabling is a no-op when numpy is not installed."""
    global np
    previous = np is not None
    np = _numpy if enabled else None
    return previous
