"""Entity resolution (the ``py_entitymatching`` substitute).

Blocking, similarity features with gazetteer support, rule/learned matchers,
transitive clustering, canonical entities.  Used as the downstream analysis
app that contrasts FD against outer join (paper Figure 8(c)/(d)).
"""

from .blocking import (
    AttributeEquivalenceBlocker,
    Blocker,
    FullBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    blocking_quality,
)
from .evaluation import (
    ERWorkload,
    PairMetrics,
    cluster_metrics,
    gold_pairs_from_clusters,
    make_er_workload,
    pair_metrics,
)
from .clustering import canonicalize_cluster, cluster_matches, entities_to_table
from .features import FeatureGenerator, Gazetteer, PairFeatures, default_gazetteer
from .matchers import LogisticRegressionMatcher, Matcher, RuleMatcher
from .pipeline import EntityResolver, ERResult
from .records import Record, records_from_table

__all__ = [
    "Record",
    "records_from_table",
    "Blocker",
    "FullBlocker",
    "AttributeEquivalenceBlocker",
    "TokenBlocker",
    "SortedNeighborhoodBlocker",
    "blocking_quality",
    "Gazetteer",
    "default_gazetteer",
    "FeatureGenerator",
    "PairFeatures",
    "Matcher",
    "RuleMatcher",
    "LogisticRegressionMatcher",
    "cluster_matches",
    "canonicalize_cluster",
    "entities_to_table",
    "EntityResolver",
    "ERResult",
    "PairMetrics",
    "pair_metrics",
    "cluster_metrics",
    "gold_pairs_from_clusters",
    "ERWorkload",
    "make_er_workload",
]
