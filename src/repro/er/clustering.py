"""From matched pairs to entities: transitive clustering + canonicalization.

Matching is pairwise; entities are the connected components of the match
graph (the standard transitive-closure step).  Each cluster is then
*canonicalized* into one representative record: per attribute, the non-null
values vote, gazetteer aliases collapse to their canonical form, and ties
break toward the longer (more informative) surface form.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..table.table import Table
from ..table.values import PRODUCED, Cell, is_null
from .features import Gazetteer
from .records import Record, attributes_of

__all__ = ["cluster_matches", "canonicalize_cluster", "entities_to_table"]


def cluster_matches(
    record_ids: Iterable[str], matched_pairs: Iterable[tuple[str, str]]
) -> list[list[str]]:
    """Connected components of the match graph; singletons included.

    Output is deterministic: clusters sorted by their smallest member id
    (numeric-aware so ``f2 < f10``), members sorted likewise.
    """
    ids = list(record_ids)
    index = {record_id: i for i, record_id in enumerate(ids)}
    parent = list(range(len(ids)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for a, b in matched_pairs:
        if a not in index or b not in index:
            raise KeyError(f"matched pair ({a}, {b}) references unknown record ids")
        parent[find(index[a])] = find(index[b])

    groups: dict[int, list[str]] = {}
    for record_id, i in index.items():
        groups.setdefault(find(i), []).append(record_id)

    def id_key(record_id: str):
        digits = "".join(ch for ch in record_id if ch.isdigit())
        return (int(digits) if digits else 0, record_id)

    clusters = [sorted(members, key=id_key) for members in groups.values()]
    clusters.sort(key=lambda members: id_key(members[0]))
    return clusters


def canonicalize_cluster(
    records: Sequence[Record], gazetteer: Gazetteer | None = None
) -> dict[str, Cell]:
    """Merge a cluster's records into one entity (see module docstring)."""
    from ..table.values import merge_null_kind

    attributes = attributes_of(records)
    merged: dict[str, Cell] = {}
    for attribute in attributes:
        votes: dict[str, tuple[int, str]] = {}
        non_string: Cell | None = None
        null_kind = PRODUCED
        for record in records:
            value = record.get(attribute)
            if value is None:
                continue
            if is_null(value):
                null_kind = merge_null_kind(null_kind, value)
                continue
            if not isinstance(value, str):
                non_string = value
                continue
            key = gazetteer.canonical(value) if gazetteer is not None else value.lower()
            count, best_surface = votes.get(key, (0, value))
            if len(value) > len(best_surface):
                best_surface = value
            votes[key] = (count + 1, best_surface)
        if votes:
            winner = max(votes.items(), key=lambda item: (item[1][0], len(item[1][1])))
            merged[attribute] = winner[1][1]
        elif non_string is not None:
            merged[attribute] = non_string
        else:
            merged[attribute] = null_kind
    return merged


def entities_to_table(
    clusters: Sequence[Sequence[str]],
    records: Mapping[str, Record],
    gazetteer: Gazetteer | None = None,
    name: str = "entities",
) -> Table:
    """Render clusters as a table (one row per resolved entity)."""
    if not records:
        return Table.empty([], name=name)
    attributes = attributes_of(records.values())
    rows = []
    for members in clusters:
        entity = canonicalize_cluster([records[m] for m in members], gazetteer)
        rows.append(tuple(entity.get(a, PRODUCED) for a in attributes))
    return Table(attributes, rows, name=name)
