"""The end-to-end entity resolver (the downstream app of paper Sec. 3.2).

``EntityResolver`` chains blocking -> feature generation -> matching ->
transitive clustering -> canonicalization, mirroring the
``py_entitymatching`` workflow the demo runs over integration results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..table.table import Table
from .blocking import Blocker, FullBlocker
from .clustering import cluster_matches, entities_to_table
from .features import FeatureGenerator, Gazetteer, PairFeatures, default_gazetteer
from .matchers import Matcher, RuleMatcher
from .records import Record, records_from_table

__all__ = ["ERResult", "EntityResolver"]


@dataclass
class ERResult:
    """Everything the resolution produced, for inspection and display."""

    records: dict[str, Record]
    candidate_pairs: set[tuple[str, str]]
    matched_pairs: list[PairFeatures]
    clusters: list[list[str]] = field(default_factory=list)
    entities: Table | None = None

    @property
    def num_entities(self) -> int:
        return len(self.clusters)

    def cluster_of(self, record_id: str) -> list[str]:
        """The entity cluster containing *record_id*."""
        for members in self.clusters:
            if record_id in members:
                return members
        raise KeyError(f"unknown record id {record_id!r}")

    def same_entity(self, a: str, b: str) -> bool:
        """Whether two records resolved to one entity."""
        return b in self.cluster_of(a)


class EntityResolver:
    """Configurable ER pipeline with sensible demo defaults.

    Defaults: full blocking (integrated tables are small), default seed
    gazetteer, rule matcher requiring ~two strong attribute agreements.
    """

    def __init__(
        self,
        blocker: Blocker | None = None,
        features: FeatureGenerator | None = None,
        matcher: Matcher | None = None,
        gazetteer: Gazetteer | None | str = "seed",
    ):
        if gazetteer == "seed":
            gazetteer = default_gazetteer()
        self.blocker = blocker or FullBlocker()
        self.features = features or FeatureGenerator(gazetteer=gazetteer)  # type: ignore[arg-type]
        self.matcher = matcher or RuleMatcher()
        self._gazetteer = gazetteer if not isinstance(gazetteer, str) else None

    def resolve_records(self, records: Sequence[Record]) -> ERResult:
        """Run the full pipeline over *records*."""
        by_id = {record.record_id: record for record in records}
        if len(by_id) != len(records):
            raise ValueError("record ids must be unique")
        candidates = self.blocker.candidate_pairs(records)
        features = self.features.feature_matrix(by_id, sorted(candidates))
        matched = self.matcher.match_pairs(features)
        clusters = cluster_matches(
            by_id.keys(), [(pair.left_id, pair.right_id) for pair in matched]
        )
        entities = entities_to_table(clusters, by_id, self._gazetteer)
        return ERResult(
            records=by_id,
            candidate_pairs=candidates,
            matched_pairs=matched,
            clusters=clusters,
            entities=entities,
        )

    def resolve_table(self, table: Table) -> ERResult:
        """Resolve the rows of *table* (ids become ``f1..fn`` row order)."""
        return self.resolve_records(records_from_table(table))

    def link_tables(self, left: Table, right: Table) -> list[tuple[str, str, float]]:
        """Two-table record linkage (``py_entitymatching``'s primary mode).

        Returns cross-table matches as ``(left id, right id, mean
        similarity)`` with ids ``L1..Ln`` / ``R1..Rm`` in row order;
        within-table pairs are discarded, so this is pure A-B linkage.
        """
        left_records = records_from_table(left, id_prefix="L")
        right_records = records_from_table(right, id_prefix="R")
        result = self.resolve_records([*left_records, *right_records])
        links = []
        for pair in result.matched_pairs:
            a, b = pair.left_id, pair.right_id
            if a[0] == b[0]:
                continue  # same side
            left_id, right_id = (a, b) if a.startswith("L") else (b, a)
            links.append((left_id, right_id, pair.mean()))
        links.sort(key=lambda item: (-item[2], item[0], item[1]))
        return links
