"""Blocking: cheaply pruning the candidate pair space.

Comparing every record pair is quadratic; blockers emit only pairs that
share some cheap signal.  Three standard blockers are provided (the same
menu ``py_entitymatching`` offers for its first stage):

* :class:`FullBlocker` -- all pairs (fine for integrated tables of demo
  size, and the recall ceiling for evaluating other blockers);
* :class:`AttributeEquivalenceBlocker` -- pairs equal on one attribute;
* :class:`TokenBlocker` -- pairs sharing at least one word token in any (or
  a chosen) attribute, with a stop-token cap so ubiquitous tokens don't
  resurrect the quadratic blowup.
"""

from __future__ import annotations

import abc
from itertools import combinations
from typing import Iterable, Sequence

from ..table.values import is_null
from ..text.tokenize import cell_tokens
from .records import Record

__all__ = [
    "Blocker",
    "FullBlocker",
    "AttributeEquivalenceBlocker",
    "TokenBlocker",
    "SortedNeighborhoodBlocker",
    "blocking_quality",
]


class Blocker(abc.ABC):
    """Base class: records in, candidate id pairs out (i < j order)."""

    @abc.abstractmethod
    def candidate_pairs(self, records: Sequence[Record]) -> set[tuple[str, str]]:
        """Unordered candidate pairs as (record_id, record_id), sorted ids."""

    @staticmethod
    def _pair(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)


class FullBlocker(Blocker):
    """Every pair -- no pruning (quadratic; demo-size inputs only)."""

    def candidate_pairs(self, records: Sequence[Record]) -> set[tuple[str, str]]:
        return {
            self._pair(a.record_id, b.record_id) for a, b in combinations(records, 2)
        }


class AttributeEquivalenceBlocker(Blocker):
    """Pairs whose *attribute* values are equal and non-null."""

    def __init__(self, attribute: str):
        self.attribute = attribute

    def candidate_pairs(self, records: Sequence[Record]) -> set[tuple[str, str]]:
        buckets: dict[str, list[str]] = {}
        for record in records:
            value = record.get(self.attribute)
            if value is None or is_null(value):
                continue
            buckets.setdefault(str(value).strip().lower(), []).append(record.record_id)
        pairs: set[tuple[str, str]] = set()
        for members in buckets.values():
            for a, b in combinations(members, 2):
                pairs.add(self._pair(a, b))
        return pairs


class TokenBlocker(Blocker):
    """Pairs sharing a word token in the chosen attributes (default: all).

    Tokens occurring in more than *max_token_frequency* fraction of records
    are treated as stop tokens and ignored.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        max_token_frequency: float = 0.5,
    ):
        self.attributes = tuple(attributes) if attributes is not None else None
        self.max_token_frequency = max_token_frequency

    def candidate_pairs(self, records: Sequence[Record]) -> set[tuple[str, str]]:
        token_owners: dict[str, list[str]] = {}
        for record in records:
            tokens: set[str] = set()
            for name, value in record.values:
                if self.attributes is not None and name not in self.attributes:
                    continue
                tokens.update(cell_tokens(value))
            for token in tokens:
                token_owners.setdefault(token, []).append(record.record_id)
        limit = max(2, int(self.max_token_frequency * max(1, len(records))))
        pairs: set[tuple[str, str]] = set()
        for owners in token_owners.values():
            if len(owners) > limit:
                continue
            for a, b in combinations(owners, 2):
                pairs.add(self._pair(a, b))
        return pairs


class SortedNeighborhoodBlocker(Blocker):
    """Sorted-neighborhood blocking: sort records by a key expression, emit
    pairs within a sliding window.

    The classic linear-ish alternative to token blocking when records have a
    roughly sortable surrogate key (names, addresses).  The key is the
    lowercase concatenation of the chosen attributes' tokens; window size
    trades recall for candidate count.
    """

    def __init__(self, attributes: Iterable[str] | None = None, window: int = 3):
        if window < 2:
            raise ValueError("window must be at least 2")
        self.attributes = tuple(attributes) if attributes is not None else None
        self.window = window

    def _sort_key(self, record: Record) -> str:
        parts: list[str] = []
        for name, value in record.values:
            if self.attributes is not None and name not in self.attributes:
                continue
            parts.extend(cell_tokens(value))
        return " ".join(parts)

    def candidate_pairs(self, records: Sequence[Record]) -> set[tuple[str, str]]:
        ordered = sorted(records, key=self._sort_key)
        pairs: set[tuple[str, str]] = set()
        for i, record in enumerate(ordered):
            for j in range(i + 1, min(i + self.window, len(ordered))):
                pairs.add(self._pair(record.record_id, ordered[j].record_id))
        return pairs


def blocking_quality(
    candidates: set[tuple[str, str]],
    gold_pairs: set[tuple[str, str]],
    num_records: int,
) -> dict[str, float]:
    """The two standard blocking metrics.

    *Pair completeness* (recall of gold pairs among candidates) and
    *reduction ratio* (how much of the quadratic pair space was pruned).
    A good blocker keeps completeness near 1.0 with a high reduction ratio.
    """
    normalized_candidates = {tuple(sorted(pair)) for pair in candidates}
    normalized_gold = {tuple(sorted(pair)) for pair in gold_pairs}
    completeness = (
        len(normalized_candidates & normalized_gold) / len(normalized_gold)
        if normalized_gold
        else 1.0
    )
    total_pairs = num_records * (num_records - 1) / 2
    reduction = 1.0 - len(normalized_candidates) / total_pairs if total_pairs else 0.0
    return {"pair_completeness": completeness, "reduction_ratio": reduction}
