"""Record model for entity resolution.

ER operates on *records*: dictionaries of attribute values plus a stable id.
:func:`records_from_table` lifts any table (integrated or raw) into records,
using the row's OID position so results can be traced back to figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..table.table import Table
from ..table.values import Cell, is_null

__all__ = ["Record", "records_from_table"]


@dataclass(frozen=True)
class Record:
    """One ER record: id plus attribute values (nulls included)."""

    record_id: str
    values: tuple[tuple[str, Cell], ...]

    @classmethod
    def from_mapping(cls, record_id: str, values: Mapping[str, Cell]) -> "Record":
        return cls(record_id=record_id, values=tuple(values.items()))

    def as_dict(self) -> dict[str, Cell]:
        """Attribute -> value view of the record."""
        return dict(self.values)

    def get(self, attribute: str) -> Cell | None:
        """Value of *attribute*, or None when the record lacks it."""
        for name, value in self.values:
            if name == attribute:
                return value
        return None

    def non_null_attributes(self) -> tuple[str, ...]:
        """Attributes carrying an actual value (nulls excluded)."""
        return tuple(name for name, value in self.values if not is_null(value))


def records_from_table(table: Table, id_prefix: str = "f") -> list[Record]:
    """One record per row; ids are ``f1, f2, ...`` in row order (matching the
    OIDs of an :class:`~repro.integration.tuples.IntegratedTable`)."""
    records = []
    for i, row in enumerate(table.rows):
        records.append(
            Record(
                record_id=f"{id_prefix}{i + 1}",
                values=tuple(zip(table.columns, row)),
            )
        )
    return records


def attributes_of(records: Iterable[Record]) -> list[str]:
    """The union of attribute names across records, first-seen order."""
    seen: dict[str, None] = {}
    for record in records:
        for name, _ in record.values:
            seen.setdefault(name)
    return list(seen)
