"""Match decision: is this candidate pair the same entity?

Two matchers mirror ``py_entitymatching``'s rule-based and learning-based
modes:

* :class:`RuleMatcher` -- a pair matches when its total comparable evidence
  reaches ``min_total`` and each contributing similarity is strong enough.
  The default ``min_total=1.5`` demands roughly two strongly-agreeing
  attributes, which is what separates the paper's Figure 8(c) from 8(d):
  Full Disjunction tuples carry enough non-null attributes to clear the
  bar; outer-join fragments don't.
* :class:`LogisticRegressionMatcher` -- a from-scratch logistic regression
  over the similarity vector (missing similarities imputed at 0), trained
  on labeled pairs, thresholded on predicted probability.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from .features import PairFeatures

__all__ = ["Matcher", "RuleMatcher", "LogisticRegressionMatcher"]


class Matcher(abc.ABC):
    """Base class for pair-level match predicates."""

    @abc.abstractmethod
    def is_match(self, pair: PairFeatures) -> bool:
        """True when the two records refer to the same entity."""

    def match_pairs(self, pairs: Sequence[PairFeatures]) -> list[PairFeatures]:
        """Filter *pairs* down to the matches."""
        return [pair for pair in pairs if self.is_match(pair)]


class RuleMatcher(Matcher):
    """Evidence-mass rule (see module docstring)."""

    def __init__(
        self,
        min_total: float = 1.5,
        min_attribute_similarity: float = 0.7,
        min_comparable: int = 1,
    ):
        self.min_total = min_total
        self.min_attribute_similarity = min_attribute_similarity
        self.min_comparable = min_comparable

    def is_match(self, pair: PairFeatures) -> bool:
        comparable = pair.comparable()
        if len(comparable) < self.min_comparable:
            return False
        strong = [
            value for value in comparable.values() if value >= self.min_attribute_similarity
        ]
        # Conflicting evidence vetoes: one attribute saying "clearly
        # different" (< 0.3) outweighs fuzzy agreement elsewhere.
        if any(value < 0.3 for value in comparable.values()):
            return False
        return sum(strong) >= self.min_total


class LogisticRegressionMatcher(Matcher):
    """Logistic regression over similarity vectors (numpy, full-batch GD)."""

    def __init__(
        self,
        attributes: Sequence[str],
        threshold: float = 0.5,
        learning_rate: float = 0.5,
        epochs: int = 500,
        l2: float = 1e-3,
        seed: int = 0,
    ):
        self.attributes = tuple(attributes)
        self.threshold = threshold
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self._rng = np.random.default_rng(seed)
        self.weights = np.zeros(len(self.attributes) + 1)
        self._trained = False

    # ------------------------------------------------------------------
    def _vector(self, pair: PairFeatures) -> np.ndarray:
        lookup = dict(pair.similarities)
        values = [
            (lookup.get(attribute) if lookup.get(attribute) is not None else 0.0)
            for attribute in self.attributes
        ]
        return np.array([1.0, *values], dtype=np.float64)

    def fit(
        self, pairs: Sequence[PairFeatures], labels: Sequence[bool]
    ) -> "LogisticRegressionMatcher":
        """Train on labeled pairs; returns self."""
        if len(pairs) != len(labels):
            raise ValueError("pairs and labels must align")
        if not pairs:
            raise ValueError("cannot train on zero pairs")
        features = np.stack([self._vector(pair) for pair in pairs])
        target = np.array([1.0 if label else 0.0 for label in labels])
        weights = self._rng.normal(0.0, 0.01, size=features.shape[1])
        for _ in range(self.epochs):
            logits = features @ weights
            predictions = 1.0 / (1.0 + np.exp(-logits))
            gradient = features.T @ (predictions - target) / len(target)
            gradient += self.l2 * weights
            weights -= self.learning_rate * gradient
        self.weights = weights
        self._trained = True
        return self

    def predict_proba(self, pair: PairFeatures) -> float:
        """Match probability of one pair (requires fit())."""
        if not self._trained:
            raise RuntimeError("LogisticRegressionMatcher used before fit()")
        logit = float(self._vector(pair) @ self.weights)
        return 1.0 / (1.0 + np.exp(-logit))

    def is_match(self, pair: PairFeatures) -> bool:
        return self.predict_proba(pair) >= self.threshold
