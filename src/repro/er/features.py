"""Pairwise feature generation for entity resolution.

For each candidate pair and each shared attribute we compute a similarity
in [0, 1], or ``None`` when either side is null (nulls carry no evidence --
exactly the property that makes ER fail on outer-join fragments in the
paper's Figure 8(c)).

String attributes use :func:`repro.text.distance.name_similarity` boosted by
a **gazetteer**: if both surface forms are registered aliases of one entity
("USA" / "United States", "J&J" / "JnJ"), the similarity is 1.0.  The
default gazetteer comes from the seed alias groups; pass your own or ``None``
to disable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..table.values import Cell, is_null
from ..text.distance import name_similarity
from ..text.normalize import to_float
from ..text.tokenize import normalize_token
from .records import Record, attributes_of

__all__ = ["Gazetteer", "PairFeatures", "FeatureGenerator", "default_gazetteer"]


class Gazetteer:
    """Alias lookup: surface form -> canonical entity key."""

    def __init__(self, alias_groups: Iterable[Sequence[str]] = ()):
        self._canonical: dict[str, str] = {}
        for group in alias_groups:
            group = list(group)
            if not group:
                continue
            canonical = normalize_token(group[0])
            for surface in group:
                self._canonical[normalize_token(surface)] = canonical

    def canonical(self, surface: str) -> str:
        """Canonical entity key of a surface form (itself when unknown)."""
        key = normalize_token(surface)
        return self._canonical.get(key, key)

    def same(self, a: str, b: str) -> bool:
        """Whether two surface forms are aliases of one entity."""
        return self.canonical(a) == self.canonical(b)

    def __len__(self) -> int:
        return len(self._canonical)


def default_gazetteer() -> Gazetteer:
    """The seed alias groups (countries, vaccines, agencies, ...)."""
    from ..datalake.seeds import ALIAS_GROUPS

    return Gazetteer(ALIAS_GROUPS)


@dataclass(frozen=True)
class PairFeatures:
    """Similarity vector for one candidate pair.

    ``similarities[attr]`` is None when the attribute was not comparable
    (null on either side or absent).
    """

    left_id: str
    right_id: str
    similarities: tuple[tuple[str, float | None], ...]

    def comparable(self) -> dict[str, float]:
        """Only the attributes where both records had a value."""
        return {name: value for name, value in self.similarities if value is not None}

    def total(self) -> float:
        """Sum of comparable similarities (the rule matcher's evidence mass)."""
        return sum(self.comparable().values())

    def mean(self) -> float:
        """Mean comparable similarity (0.0 when nothing is comparable)."""
        comparable = self.comparable()
        return sum(comparable.values()) / len(comparable) if comparable else 0.0


class FeatureGenerator:
    """Computes :class:`PairFeatures` over a chosen attribute set."""

    def __init__(
        self,
        attributes: Sequence[str] | None = None,
        gazetteer: Gazetteer | None = None,
        numeric_tolerance: float = 0.05,
    ):
        self.attributes = tuple(attributes) if attributes is not None else None
        self.gazetteer = gazetteer
        self.numeric_tolerance = numeric_tolerance

    def features(self, left: Record, right: Record) -> PairFeatures:
        """The similarity vector for one candidate pair."""
        attributes = self.attributes
        if attributes is None:
            attributes = tuple(attributes_of([left, right]))
        similarities = []
        for attribute in attributes:
            similarities.append(
                (attribute, self._attribute_similarity(left.get(attribute), right.get(attribute)))
            )
        return PairFeatures(
            left_id=left.record_id,
            right_id=right.record_id,
            similarities=tuple(similarities),
        )

    def feature_matrix(
        self, records: Mapping[str, Record], pairs: Iterable[tuple[str, str]]
    ) -> list[PairFeatures]:
        """Features for every candidate pair (ids must exist in *records*)."""
        return [self.features(records[a], records[b]) for a, b in pairs]

    # ------------------------------------------------------------------
    def _attribute_similarity(self, a: Cell | None, b: Cell | None) -> float | None:
        if a is None or b is None or is_null(a) or is_null(b):
            return None
        number_a, number_b = to_float(a), to_float(b)
        if number_a is not None and number_b is not None:
            return self._numeric_similarity(number_a, number_b)
        text_a, text_b = str(a), str(b)
        if self.gazetteer is not None and self.gazetteer.same(text_a, text_b):
            return 1.0
        return name_similarity(text_a, text_b)

    def _numeric_similarity(self, a: float, b: float) -> float:
        if a == b:
            return 1.0
        scale = max(abs(a), abs(b))
        if scale == 0.0:
            return 1.0
        relative_gap = abs(a - b) / scale
        if relative_gap <= self.numeric_tolerance:
            return 1.0 - relative_gap / self.numeric_tolerance * 0.5
        return max(0.0, 0.5 - relative_gap)
