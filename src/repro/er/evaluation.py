"""Evaluation for entity resolution: pair/cluster metrics and a synthetic
workload with ground truth.

Used by experiment E14 (ER quality over FD vs outer-join integration, the
quantified version of Figure 8's anecdote) and by anyone tuning matchers:
``pair_metrics`` scores predicted match pairs against gold pairs,
``cluster_metrics`` scores the final clustering, and
``make_er_workload`` generates alias-perturbed entity tables whose true
clusters are known.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from ..datalake import seeds
from ..table.table import Table
from ..table.values import MISSING

__all__ = [
    "PairMetrics",
    "pair_metrics",
    "cluster_metrics",
    "gold_pairs_from_clusters",
    "ERWorkload",
    "make_er_workload",
]


@dataclass(frozen=True)
class PairMetrics:
    """Precision / recall / F1 over unordered record pairs."""

    true_positive: int
    false_positive: int
    false_negative: int

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _normalize_pairs(pairs: Iterable[tuple[str, str]]) -> set[tuple[str, str]]:
    return {tuple(sorted(pair)) for pair in pairs}


def pair_metrics(
    predicted: Iterable[tuple[str, str]], gold: Iterable[tuple[str, str]]
) -> PairMetrics:
    """Compare predicted match pairs against gold pairs."""
    predicted_set = _normalize_pairs(predicted)
    gold_set = _normalize_pairs(gold)
    return PairMetrics(
        true_positive=len(predicted_set & gold_set),
        false_positive=len(predicted_set - gold_set),
        false_negative=len(gold_set - predicted_set),
    )


def gold_pairs_from_clusters(clusters: Sequence[Sequence[str]]) -> set[tuple[str, str]]:
    """All within-cluster pairs of a gold clustering."""
    pairs: set[tuple[str, str]] = set()
    for members in clusters:
        for a, b in combinations(sorted(members), 2):
            pairs.add((a, b))
    return pairs


def cluster_metrics(
    predicted: Sequence[Sequence[str]], gold: Sequence[Sequence[str]]
) -> PairMetrics:
    """Pairwise metrics of a predicted clustering against a gold clustering
    (the standard pairwise-F1 view of clustering quality)."""
    return pair_metrics(
        gold_pairs_from_clusters(predicted), gold_pairs_from_clusters(gold)
    )


# ----------------------------------------------------------------------
# Synthetic ER workload
# ----------------------------------------------------------------------
@dataclass
class ERWorkload:
    """Alias-perturbed entity records split across source tables.

    ``tables`` form an integration set; ``gold_clusters`` group *source
    TIDs* (``t1..tn``, numbered across the integration set in input order --
    the same numbering integration uses) that refer to one real entity.
    """

    tables: list[Table]
    gold_clusters: list[list[str]]


def make_er_workload(
    num_entities: int = 8,
    seed: int = 0,
    null_rate: float = 0.25,
) -> ERWorkload:
    """Vaccine-style entities split Figure 7-style across three tables.

    Each entity is a distinct (vaccine, country, agency) triple -- distinct
    per attribute so tuples are entity-discriminating, exactly like the
    paper's T4-T6 where one country row belongs to one vaccine's story.
    Table A carries (Vaccine, Approver), B (Country, Approver), C
    (Vaccine, Country); the vaccine surface in C is a *different alias*
    than in A whenever the entity has aliases (the J&J/JnJ mechanic), and
    approver/country cells go missing at *null_rate* (the ``±`` mechanic
    that strands outer-join fragments).
    """
    rng = random.Random(seed)
    vaccine_names = list(seeds.VACCINES)
    agency_names = list(seeds.AGENCIES)
    country_names = list(seeds.COUNTRIES)
    rng.shuffle(vaccine_names)
    rng.shuffle(agency_names)
    rng.shuffle(country_names)
    if num_entities > min(len(vaccine_names), len(agency_names), len(country_names)):
        raise ValueError(
            "num_entities exceeds the distinct seed vocabulary "
            f"({min(len(vaccine_names), len(agency_names), len(country_names))})"
        )

    rows_a: list[tuple] = []  # (Vaccine, Approver)
    rows_b: list[tuple] = []  # (Country, Approver)
    rows_c: list[tuple] = []  # (Vaccine, Country)
    entity_rows: list[list[tuple[int, int]]] = []  # (table idx, row idx) per entity
    for entity_index in range(num_entities):
        vaccine = vaccine_names[entity_index]
        agency = agency_names[entity_index]
        country = country_names[entity_index]
        vaccine_aliases = seeds.VACCINES[vaccine][0]
        country_aliases = seeds.COUNTRIES.get(country, ())
        members: list[tuple[int, int]] = []

        del country_aliases  # country is the FD bridge: one surface everywhere
        vaccine_in_a = vaccine
        vaccine_in_c = vaccine_aliases[0] if vaccine_aliases else vaccine
        country_in_b = country
        country_in_c = country

        rows_a.append(
            (vaccine_in_a, MISSING if rng.random() < null_rate else agency)
        )
        members.append((0, len(rows_a) - 1))
        rows_b.append(
            (country_in_b, MISSING if rng.random() < null_rate else agency)
        )
        members.append((1, len(rows_b) - 1))
        rows_c.append((vaccine_in_c, country_in_c))
        members.append((2, len(rows_c) - 1))
        entity_rows.append(members)

    tables = [
        Table(["Vaccine", "Approver"], rows_a, name="approvals"),
        Table(["Country", "Approver"], rows_b, name="agencies"),
        Table(["Vaccine", "Country"], rows_c, name="origins"),
    ]
    # TID numbering follows prepare_integration_input: all of table 0's rows
    # first, then table 1's, then table 2's.
    offsets = [0, len(rows_a), len(rows_a) + len(rows_b)]
    gold_clusters = []
    for members in entity_rows:
        gold_clusters.append(
            sorted(f"t{offsets[table_index] + row_index + 1}" for table_index, row_index in members)
        )
    return ERWorkload(tables=tables, gold_clusters=gold_clusters)
