"""Per-shard search execution for scatter-gather discovery.

One shard answers a query by running the normal two-phase search --
retrieval through its own candidate engine, scoring of retrieved
candidates only -- but with the engine in ``defer_policy`` mode: the
shard reports *what it retrieved* (counts, strengths) and scores it,
while the fallback-floor and budget decisions that depend on lake-wide
counts move to the reducer (:class:`~repro.shard.index.ShardedLakeIndex`).

Why this preserves byte-identity with the single-store pipeline:

* every scorer ranks candidates by per-candidate-pure functions of the
  query and the candidate's own column stats, then sorts by the total
  order ``(-score, table_name)`` -- so the global top-k is contained in
  the union of per-shard top-k lists (any table beaten by >= k tables
  globally is beaten by >= k tables within its own shard's slice);
* retrieval evidence (posting probes, banded sketch hits with
  size-bucket partitioning, label matches) is per-candidate pure, so a
  shard's evidence is exactly the global evidence restricted to its
  tables;
* with a budget, the global kept set is the top-B of the union of
  per-shard strength totals; its members inside one shard are a prefix
  of that shard's own strength ranking, so the per-shard cap at the same
  B (applied by ``defer_policy`` finalize) never drops a kept table --
  the reducer re-derives the exact global kept set from the reported
  totals;
* the exhaustive fallback (TUS's floor) triggers *iff* the summed
  retrieved count is under the floor -- the same predicate the unsharded
  ``_finalize`` evaluates -- and round two scores every shard table with
  retrieval evidence retained, mirroring the unsharded fallback's
  evidence-retention semantics.

The module-level functions double as process-pool entry points: a pool
worker hydrates its shard's persisted index once (initializer), then
answers searches from warm state.  Queries cross the process boundary as
codec documents (stored tables carry unpicklable column loaders), and
span trees come back as dicts for the driver to graft
(:meth:`Tracer.attach_tree <repro.obs.trace.Tracer.attach_tree>`).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Sequence

from ..candidates.spec import CandidateSet
from ..obs import metrics, trace
from ..store.codec import decode_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..datalake.indexer import LakeIndex
    from ..discovery.base import Discoverer
    from ..table.table import Table

__all__ = [
    "deferred_search",
    "fallback_search",
    "process_worker_init",
    "process_worker_run",
    "process_worker_metrics",
]


def _chosen(index: "LakeIndex", names: Sequence[str] | None) -> list["Discoverer"]:
    by_name = {d.name: d for d in index.discoverers}
    if names is None:
        return index.discoverers
    missing = sorted(set(names) - set(by_name))
    if missing:
        raise KeyError(f"unknown discoverers: {missing}; have {sorted(by_name)}")
    return [by_name[name] for name in names]


def deferred_search(
    index: "LakeIndex",
    query: "Table",
    k: int,
    query_column: str | None,
    names: Sequence[str] | None,
) -> dict[str, dict[str, Any]]:
    """Round one on one shard: per-discoverer local results + retrieval
    accounting, with floor/budget policy deferred to the reducer.

    Per discoverer the payload carries ``mode`` (``assemble`` for
    evidence-backed retrieval, ``exhaustive`` for all-candidate specs,
    ``empty`` for unprobeable queries), the local sorted results
    (truncated to k only when no budget is in play -- under a budget the
    reducer needs every scored row to filter against the global kept
    set), the pre-cap ``retrieved`` count and fallback ``floor``, and the
    full strength ``totals`` when a budget applies.
    """
    engine = index.engine
    engine.defer_policy = True
    query.stats.warm()
    out: dict[str, dict[str, Any]] = {}
    for discoverer in _chosen(index, names):
        spec = discoverer.candidate_spec()
        budget = spec.budget if spec.budget is not None else engine.default_budget
        with trace.span(f"discover.{discoverer.name}", k=k):
            with trace.span("discover.candidates") as candidates_span:
                candidates = discoverer._candidates(query, k, query_column)
                candidates_span.add(candidates=len(candidates.tables))
            with trace.span("discover.score") as score_span:
                results = discoverer._search(query, k, query_column, candidates)
                score_span.add(results=len(results))
        results.sort(key=lambda r: (-r.score, r.table_name))
        report = candidates.report.to_json() if candidates.report else None
        deferred = candidates.context.get("deferred")
        if deferred is None:
            exhaustive = candidates.report is not None and candidates.report.exhaustive
            out[discoverer.name] = {
                "mode": "exhaustive" if exhaustive else "empty",
                "results": results[:k],
                "retrieved": candidates.report.retrieved if candidates.report else 0,
                "floor": 0,
                "totals": None,
                "budget": budget,
                "report": report,
            }
            continue
        out[discoverer.name] = {
            "mode": "assemble",
            "results": results if budget is not None else results[:k],
            "retrieved": deferred["retrieved"],
            "floor": deferred["floor"],
            "totals": deferred["totals"] if budget is not None else None,
            "budget": budget,
            "report": report,
        }
    return out


def fallback_search(
    index: "LakeIndex",
    query: "Table",
    k: int,
    query_column: str | None,
    names: Sequence[str],
) -> dict[str, list]:
    """Round two on one shard, run only when the reducer found the
    *global* retrieved count under a discoverer's floor: score every
    shard table with retrieval evidence retained -- the sharded image of
    the unsharded ``_finalize`` fallback (which hands the scorer the
    whole lake plus the evidence it already gathered, *not* the
    evidence-free ``force_exhaustive`` scan)."""
    engine = index.engine
    engine.defer_policy = True
    query.stats.warm()
    out: dict[str, list] = {}
    for discoverer in _chosen(index, names):
        with trace.span(f"discover.{discoverer.name}", k=k, fallback=1):
            candidates = discoverer._candidates(query, k, query_column)
            expanded = CandidateSet(
                tables=tuple(engine.tables()),
                evidence=candidates.evidence,
                fallback=True,
                truncated=False,
                report=candidates.report,
            )
            expanded.context.update(candidates.context)
            expanded.context.pop("deferred", None)
            with trace.span("discover.score") as score_span:
                results = discoverer._search(query, k, query_column, expanded)
                score_span.add(results=len(results))
        results.sort(key=lambda r: (-r.score, r.table_name))
        out[discoverer.name] = results[:k]
    return out


# ----------------------------------------------------------------------
# Process-pool entry points (one single-worker pool per shard: the
# initializer hydrates once, every later task reuses the warm index)
# ----------------------------------------------------------------------
_WORKER: dict[str, Any] = {}


def process_worker_init(shard_path: str, expected_version: int | None = None) -> None:
    """Pool initializer: hydrate this shard's persisted index (stats
    snapshots, postings artifact, discoverer pickles) exactly once.

    ``expected_version`` pins hydration to the lease's generation.  A
    *respawned* worker (supervision replacing a dead one) can race a
    concurrent ingest: the shard's on-disk version has moved and its
    persisted indexes belong to a lake the driver is not serving --
    answering from them would return wrong-version results.  Exiting
    cleanly instead turns the race into a supervised scatter failure:
    the affected answer degrades (annotated, never cached) until the
    service reload swaps in a generation built for the new version.
    ``os._exit`` rather than ``raise`` so the driver sees the same
    broken-pool signal as a crash, without an initializer traceback
    polluting stderr on an expected transition.
    """
    from ..datalake.indexer import LakeIndex
    from ..store.lakestore import LakeStore, StoreError

    try:
        store = LakeStore.open(shard_path)
        if expected_version is not None and store.lake_version != expected_version:
            os._exit(3)
        index = LakeIndex.from_store(store)
    except StoreError:
        # Mid-ingest artifact state (persisted indexes dropped, not yet
        # rebuilt): same transition as the version race above.
        os._exit(3)
    index.engine.defer_policy = True
    _WORKER["index"] = index
    _WORKER["shard_path"] = shard_path


def process_worker_run(payload: dict[str, Any]) -> dict[str, Any]:
    """One scatter task: decode the query, run the requested round on the
    warm shard index under a local tracer, ship results + span tree back."""
    if payload.get("_fault_kill"):
        # Injected worker death (repro.faults fault point
        # ``shard.worker.exit``): die for real, before answering, so the
        # driver observes a genuine BrokenProcessPool -- not an exception
        # a result pickle could soften.
        os._exit(17)
    index = _WORKER["index"]
    index.engine.default_budget = payload.get("budget")
    query = decode_table(payload["query"])
    # Warm the query profile before the clocks start: the thread executor
    # warms once in the driver outside its measured region, so leaving it
    # inside here would charge every process worker for the same constant
    # profiling cost and skew the wall/cpu accounting between executors.
    # What the clocks measure on both paths is retrieval + scoring.
    query.stats.warm()
    # Adopt the driver's distributed trace id so this worker's tree
    # grafts into the request's single tree; stamp the root span with it
    # as observable proof of propagation in the merged rendering.
    trace_id = payload.get("trace_id")
    tracer = trace.Tracer(trace_id=trace_id)
    start = time.perf_counter()
    start_cpu = time.thread_time()
    root_counters = {"trace_id": trace_id} if trace_id else {}
    with tracer.activate():
        with tracer.span(payload["label"], **root_counters):
            if payload.get("round") == "fallback":
                answer: Any = fallback_search(
                    index, query, payload["k"], payload["column"], payload["names"]
                )
            else:
                answer = deferred_search(
                    index, query, payload["k"], payload["column"], payload["names"]
                )
    # cpu_s is this worker's own CPU seconds: unlike wall_s it excludes
    # time spent descheduled while sibling shards share a starved host,
    # so max-over-shards cpu_s is the honest critical-path latency a
    # one-core-per-shard deployment would observe.
    return {
        "answer": answer,
        "trace": tracer.to_dict(),
        "wall_s": time.perf_counter() - start,
        "cpu_s": time.thread_time() - start_cpu,
    }


def process_worker_metrics(_: Any = None) -> dict[str, Any]:
    """This worker process's metrics snapshot (the driver folds all of
    them into one view with ``merge_snapshots``).  The ``identity`` key
    names the reporting process; :func:`merge_snapshots` ignores it, so
    folding is unchanged while exported documents stay attributable."""
    from ..obs.export import snapshot_identity

    snapshot = metrics.global_registry().snapshot()
    snapshot["identity"] = snapshot_identity(
        "shard-worker", shard=_WORKER.get("shard_path")
    )
    return snapshot
