"""repro.shard: a content-hash-routed sharded lake (ROADMAP item 1).

A :class:`ShardedLakeStore` wraps N independent :class:`~repro.store.LakeStore`
shards under one manifest-of-manifests (``lake.json``): every table routes
to exactly one shard by a stable hash of its name, so an ingest or remove
rewrites -- and invalidates the persisted postings/indexes of -- exactly
one shard.  The per-shard ``lake_version`` counters roll up into a
monotonic *lake epoch* that satisfies the same ``current_version()``
contract the serving layer's hot-reload path already polls.

Discovery becomes scatter-gather: :class:`ShardedLakeIndex` fits one
candidate engine + discoverer roster per shard (persisted per-shard,
version-pinned exactly like the single store), fans a profiled-once query
out across a process pool (threads for <= 2 shards), and reduces per-shard
answers with the deterministic total order the single-store pipeline uses
-- so the sharded top-k is byte-identical to the unsharded one on the same
tables (pinned by ``tests/property/test_shard_equivalence.py``).
"""

from .store import ShardedDataLake, ShardedLakeStore, open_any_store, recover_any_store
from .index import ShardedLakeIndex

__all__ = [
    "ShardedLakeStore",
    "ShardedDataLake",
    "ShardedLakeIndex",
    "open_any_store",
    "recover_any_store",
]
