"""Scatter-gather discovery over a sharded lake.

:class:`ShardedLakeIndex` is the sharded twin of
:class:`~repro.datalake.indexer.LakeIndex`: one candidate engine +
fitted discoverer roster *per shard* (persisted per-shard and
version-pinned exactly like the single store), a scatter phase that fans
a profiled-once query out across the shards, and a reducer that merges
the per-shard answers into the exact result the single-store pipeline
would produce -- byte-identical top-k, pinned by
``tests/property/test_shard_equivalence.py``.

Two ingredients make the reduction exact rather than approximate:

**Lake-global fit state.**  Two discoverers derive corpus-wide products
at fit time -- SANTOS synthesizes a knowledge base from the lake and TUS
accumulates corpus IDF -- so a naive per-shard fit would score with
shard-local statistics.  :meth:`build` computes those products once over
the *combined* lake (deterministically: KB synthesis iterates tables in
sorted order, IDF document frequencies are order-free counts) and
injects them into every shard's fit via ``adopt_kb`` /
``adopt_corpus_idf``; the products persist at the lake root
(``global_fit.pkl``) stamped with the epoch they were computed at.  A
partial refit after a single-shard ingest deliberately *reuses* the
pinned state so all shards stay mutually consistent (the documented
drift caveat: rebuild to refresh corpus statistics).

**Deferred retrieval policy.**  Shard engines run with
``defer_policy = True``: retrieval reports its evidence (counts,
strength totals) without applying the exhaustive-fallback floor, whose
predicate needs the *lake-wide* retrieved count.  The reducer sums the
per-shard counts (shards are disjoint), applies the identical floor
test, and -- when a budget is active -- re-derives the global kept set
from the union of per-shard strength totals using the engine's own
``(-strength, name)`` order.  When the floor trips, a second scatter
runs the evidence-retained exhaustive round on every shard, mirroring
the unsharded fallback.  See :mod:`repro.shard.worker` for the
per-shard half and the full byte-identity argument.

Executors: ``"threads"`` runs shards on a thread pool in-process (the
default for <= 2 shards, where GIL contention is cheaper than process
hops); ``"processes"`` gives each shard a single-worker process pool
whose initializer hydrates the shard index once (warm across requests).
Pools are wrapped in refcounted leases so a service reload keeps the
warm worker of every shard whose version did not move.

**Supervision** (process mode): a scatter that loses a worker -- the
process died (``BrokenProcessPool``) or blew the per-scatter deadline
(``scatter_timeout``) -- respawns that shard's pool and retries the
failed shards once.  A shard that fails its retry too is dropped from
the merge and reported in :attr:`last_degraded_shards`: the query
returns the surviving shards' answer, explicitly *degraded* rather than
failed (the serving layer annotates the payload and skips its result
cache).  Only when every shard fails does the search raise.  Respawns
and degraded scatters are counted in ``repro.obs`` metrics
(``shard.worker.respawns``, ``shard.scatter.degraded``).
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Sequence

from ..datalake.indexer import LakeIndex
from ..discovery.base import Discoverer, DiscoveryResult, merge_result_sets
from ..faults import inject
from ..obs import metrics, trace
from ..store.codec import encode_table
from ..store.lakestore import StoreError
from ..table.table import Table
from . import worker as shard_worker
from .store import ShardedLakeStore

__all__ = ["ShardedLakeIndex"]

#: Shard-count threshold under which "auto" picks threads over processes.
_THREAD_SHARD_LIMIT = 2

#: Buckets for the scatter skew ratio (slowest shard / mean shard wall).
_SKEW_BOUNDS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0)


def _mp_context():
    """Fork when the platform has it (workers inherit the warm import
    state); the default start method otherwise."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class _PoolLease:
    """A refcounted single-worker process pool pinned to one shard at one
    version.

    A service reload builds a new :class:`ShardedLakeIndex`, but shards
    whose version did not move transfer their lease to the new index
    (:meth:`acquire`) instead of respawning -- the warm worker (hydrated
    stats snapshots, unpickled discoverer indexes) survives the
    generation swap.  The last :meth:`release` shuts the pool down.
    """

    def __init__(self, shard_path: str, version: int):
        self.path = str(shard_path)
        self.version = version
        self._refs = 1
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=1,
            mp_context=_mp_context(),
            initializer=shard_worker.process_worker_init,
            # The version pin makes respawns safe under concurrent
            # ingests: a worker spawned while the shard's on-disk state
            # has already moved past this lease's generation exits
            # cleanly instead of hydrating -- and answering from -- a
            # version its driver is not serving.
            initargs=(self.path, self.version),
        )

    def acquire(self) -> "_PoolLease":
        with self._lock:
            if self._pool is None:
                raise RuntimeError(f"pool lease for {self.path} already shut down")
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            if self._refs > 0:
                return
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def submit(self, fn, *args):
        pool = self._pool
        if pool is None:
            raise RuntimeError(f"pool lease for {self.path} already shut down")
        return pool.submit(fn, *args)

    def alive(self) -> bool:
        """False once the pool is shut down or its worker died (a broken
        pool stays broken until the supervisor respawns the lease)."""
        pool = self._pool
        return pool is not None and not getattr(pool, "_broken", False)


class ShardedLakeIndex:
    """Per-shard engines + rosters behind the :class:`LakeIndex` search
    surface (``search`` / ``search_merged`` / ``retrieval_reports`` /
    ``set_candidate_budget`` / ``build_seconds``)."""

    def __init__(
        self,
        store: ShardedLakeStore,
        discoverers: Sequence[Discoverer] | None = None,
        executor: str = "auto",
        scatter_timeout: float | None = 60.0,
    ):
        if executor not in ("auto", "threads", "processes"):
            raise ValueError(
                f"executor must be auto|threads|processes, got {executor!r}"
            )
        if executor == "auto":
            executor = (
                "threads" if store.num_shards <= _THREAD_SHARD_LIMIT else "processes"
            )
        self._store = store
        self._prototypes = list(discoverers) if discoverers is not None else None
        self._executor = executor
        self._shard_indexes: list[LakeIndex | None] = [None] * store.num_shards
        self._leases: list[_PoolLease | None] = [None] * store.num_shards
        self._thread_pool: ThreadPoolExecutor | None = None
        self._roster_names: list[str] = (
            [d.name for d in self._prototypes] if self._prototypes is not None else []
        )
        self._build_seconds: dict[str, float] = {}
        self._shard_versions: list[int] = []
        self._last_reports: dict[str, dict[str, Any]] = {}
        self._built = False
        self._budget: int | None = None
        self._closed = False
        self._last_critical_cpu_s = 0.0
        # Per-scatter deadline (process mode): a worker that neither
        # answers nor dies within this window counts as hung and its pool
        # is respawned.  None disables the deadline.
        self._scatter_timeout = scatter_timeout
        self._last_degraded: tuple[int, ...] = ()
        self._respawns = 0
        # Monotonic timestamp of each shard's most recent supervised
        # respawn (None = never respawned); surfaced as an *age* through
        # shard_health() so pollers can spot flapping workers.
        self._last_respawn_at: list[float | None] = [None] * store.num_shards
        # Serializes lazy executor construction: the serving layer's
        # worker threads may race the first search.
        self._exec_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def store(self) -> ShardedLakeStore:
        return self._store

    @property
    def executor(self) -> str:
        return self._executor

    @property
    def discoverer_names(self) -> list[str]:
        return list(self._roster_names)

    @property
    def build_seconds(self) -> dict[str, float]:
        """Per-discoverer fit wall time, summed across shards (the
        sequential cost of the build)."""
        return dict(self._build_seconds)

    @property
    def is_built(self) -> bool:
        return self._built

    def set_candidate_budget(self, budget: int | None) -> "ShardedLakeIndex":
        """Engine-wide candidate budget, applied per shard *and* re-judged
        globally by the reducer (see the module docstring); None restores
        unbudgeted retrieval."""
        self._budget = budget
        return self

    def retrieval_reports(self) -> dict[str, dict[str, Any]]:
        """Per-discoverer last-retrieval summaries, synthesized from the
        per-shard reports into the global accounting the unsharded engine
        would have recorded (``discover --explain``)."""
        return {name: dict(doc) for name, doc in self._last_reports.items()}

    @property
    def last_degraded_shards(self) -> tuple[int, ...]:
        """Shard indexes the previous :meth:`search` could not recover
        (dead even after a respawn + retry) -- empty on a healthy query.
        The pipeline threads this into the response's degraded-result
        annotation."""
        return self._last_degraded

    @property
    def worker_respawns(self) -> int:
        """Shard pools respawned by supervision over this index's life."""
        return self._respawns

    def shard_health(self) -> list[dict[str, Any]]:
        """Per-shard liveness (the service ``health`` op's shard view).
        A lease that was never spawned reports alive -- it will be on
        first use; a broken one reports dead until supervision respawns
        it on the next scatter.  ``last_respawn_age_s`` is the seconds
        since supervision last replaced the shard's pool (None = never):
        a small, repeatedly-resetting age marks a flapping worker without
        any metrics plumbing."""
        now = time.monotonic()
        health: list[dict[str, Any]] = []
        for i, name in enumerate(self._store.shard_names):
            respawned_at = self._last_respawn_at[i]
            entry: dict[str, Any] = {
                "shard": name,
                "version": (
                    self._shard_versions[i]
                    if i < len(self._shard_versions)
                    else None
                ),
                "last_respawn_age_s": (
                    round(now - respawned_at, 3) if respawned_at is not None else None
                ),
            }
            if self._executor == "processes":
                lease = self._leases[i]
                entry["alive"] = True if lease is None else lease.alive()
            else:
                entry["alive"] = True
            health.append(entry)
        return health

    # ------------------------------------------------------------------
    # Lake-global fit state (see the module docstring)
    # ------------------------------------------------------------------
    def _compute_fit_state(self) -> dict[str, Any]:
        assert self._prototypes is not None
        lake = self._store.lake()
        state: dict[str, Any] = {"kb": {}, "idf": {}}
        for proto in self._prototypes:
            if hasattr(proto, "adopt_kb") and getattr(
                proto.config, "synthesize_kb", False
            ):
                kb = copy.deepcopy(proto.kb)
                kb.synthesize_from_tables(
                    lake, min_jaccard=proto.config.synth_min_jaccard
                )
                state["kb"][proto.name] = kb
            if hasattr(proto, "adopt_corpus_idf"):
                from ..text.tfidf import TfIdfWeights

                idf = TfIdfWeights()
                max_values = proto.config.max_values
                stats = lake.stats
                # One document per column, exactly the token sets the
                # discoverer's summaries consume; document-frequency
                # counts are order-free, so any iteration order yields
                # the same weights as the unsharded accumulation.
                for table_name in self._store.table_names:
                    table_stats = stats.table(table_name)
                    for column in table_stats.columns:
                        idf.add_document(
                            table_stats.column(column).text_values(max_values)
                        )
                state["idf"][proto.name] = idf
        return state

    def _ensure_fit_state(self) -> dict[str, Any]:
        state = self._store.load_fit_state()
        if state is None:
            state = self._compute_fit_state()
            self._store.save_fit_state(state)
        return state

    def _adapted_roster(self, state: dict[str, Any]) -> list[Discoverer]:
        """Unfitted clones of the prototypes with the lake-global fit
        products injected -- what every shard's fit (and warm-start
        substitution) receives; the prototypes themselves are never
        fitted."""
        assert self._prototypes is not None
        roster: list[Discoverer] = []
        for proto in self._prototypes:
            clone = proto.clone_unfitted()
            kb = state.get("kb", {}).get(proto.name)
            if kb is not None and hasattr(clone, "adopt_kb"):
                clone.adopt_kb(kb)
            idf = state.get("idf", {}).get(proto.name)
            if idf is not None and hasattr(clone, "adopt_corpus_idf"):
                clone.adopt_corpus_idf(idf)
            roster.append(clone)
        return roster

    # ------------------------------------------------------------------
    # Build / hydrate
    # ------------------------------------------------------------------
    def build(self) -> "ShardedLakeIndex":
        """Fit every shard's roster (global fit state first), persisting
        each shard's indexes + postings pinned to its version; returns
        self.  Idempotent like :meth:`LakeIndex.build`."""
        if self._built:
            return self
        if self._prototypes is None:
            raise StoreError(
                "building a sharded index requires discoverer prototypes; "
                "pass discoverers= (or hydrate with from_store after an "
                "index build)"
            )
        state = self._compute_fit_state()
        self._store.save_fit_state(state)
        self._build_seconds = {}
        for i, shard in enumerate(self._store.shards):
            built = LakeIndex(shard.lake(), self._adapted_roster(state)).build()
            built.save_to_store(shard)
            for name, seconds in built.build_seconds.items():
                self._build_seconds[name] = (
                    self._build_seconds.get(name, 0.0) + seconds
                )
            if self._executor == "threads":
                built.engine.defer_policy = True
                self._shard_indexes[i] = built
        self._shard_versions = self._store.shard_versions()
        self._roster_names = [d.name for d in self._prototypes]
        self._built = True
        return self

    @classmethod
    def from_store(
        cls,
        store: ShardedLakeStore,
        discoverers: Sequence[Discoverer] | None = None,
        previous: "ShardedLakeIndex | None" = None,
        executor: str = "auto",
    ) -> "ShardedLakeIndex":
        """A ready-to-search sharded index hydrated from persisted
        per-shard artifacts.

        *previous* (a still-serving :class:`ShardedLakeIndex` over the
        same lake) donates per-shard state for every shard whose version
        did not move: the hydrated in-process index in thread mode, the
        warm worker-pool lease in process mode -- so a single-table
        ingest reload rebuilds exactly one shard.  Shards with missing
        or stale persisted indexes are refitted here (with the pinned
        global fit state) and re-persisted; with ``discoverers=None``
        that situation raises instead (nothing to refit from).
        """
        index = cls(store, discoverers=discoverers, executor=executor)
        index._hydrate(previous)
        return index

    def _reusable(self, previous: "ShardedLakeIndex | None") -> bool:
        return (
            previous is not None
            and previous is not self
            and previous._built
            and not previous._closed
            and previous._executor == self._executor
            and previous._store.num_shards == self._store.num_shards
            and str(previous._store.path) == str(self._store.path)
            and (
                self._prototypes is None
                or previous._roster_names == [d.name for d in self._prototypes]
            )
        )

    def _hydrate(self, previous: "ShardedLakeIndex | None" = None) -> None:
        store = self._store
        reuse = self._reusable(previous)
        recorded = store.index_build_seconds()
        self._build_seconds = dict(recorded)
        state: dict[str, Any] | None = None  # loaded/computed on first need
        roster_names: list[str] = list(self._roster_names)
        if not roster_names:
            # No prototypes: serve the roster every shard can answer.
            # Shards may persist heterogeneous rosters (a pipeline opened
            # with a subset refits only the shards that moved), so the
            # servable roster is the cross-shard intersection, in the
            # first shard's persisted order.
            if reuse and previous is not None:
                roster_names = list(previous._roster_names)
            else:
                common: set[str] | None = None
                first_order: list[str] = []
                for shard in store.shards:
                    persisted = list(shard.info().get("indexes") or [])
                    if common is None:
                        common = set(persisted)
                        first_order = persisted
                    else:
                        common &= set(persisted)
                roster_names = [n for n in first_order if n in (common or set())]
            if not roster_names:
                raise StoreError(
                    "no discoverer index is persisted on every shard; run an "
                    "index build or pass explicit discoverers"
                )
            self._roster_names = list(roster_names)
        for i, shard in enumerate(store.shards):
            version = shard.lake_version
            if (
                reuse
                and previous is not None
                and i < len(previous._shard_versions)
                and previous._shard_versions[i] == version
            ):
                if self._executor == "threads":
                    donated = previous._shard_indexes[i]
                    if donated is not None:
                        self._shard_indexes[i] = donated
                        continue
                else:
                    lease = previous._leases[i]
                    if lease is not None and lease.version == version:
                        self._leases[i] = lease.acquire()
                        # The donated pool carries its respawn history:
                        # a flapping worker stays visible across reloads.
                        self._last_respawn_at[i] = previous._last_respawn_at[i]
                        continue
            info = shard.info()
            persisted_names = list(info.get("indexes") or [])
            current = info.get("indexes_lake_version") == version and set(
                roster_names
            ) <= set(persisted_names)
            if not current:
                if self._prototypes is None:
                    raise StoreError(
                        f"shard {store.shard_names[i]} has no current persisted "
                        f"indexes for version {version}; run an index build or "
                        f"pass explicit discoverers"
                    )
                if state is None:
                    state = self._ensure_fit_state()
                built = LakeIndex(
                    shard.lake(), self._adapted_roster(state)
                ).build()
                built.save_to_store(shard)
                for name, seconds in built.build_seconds.items():
                    self._build_seconds[name] = (
                        self._build_seconds.get(name, 0.0) + seconds
                    )
                if self._executor == "threads":
                    built.engine.defer_policy = True
                    self._shard_indexes[i] = built
                continue
            if self._executor == "threads":
                if self._prototypes is not None:
                    if state is None:
                        state = self._ensure_fit_state()
                    hydrated = LakeIndex.from_store(
                        shard, discoverers=self._adapted_roster(state)
                    )
                else:
                    hydrated = LakeIndex.from_store(shard)
                hydrated.engine.defer_policy = True
                self._shard_indexes[i] = hydrated
            # Process mode: the pool initializer hydrates lazily on first
            # search (LakeIndex.from_store over the persisted roster).
        self._shard_versions = store.shard_versions()
        self._built = True

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        with self._exec_lock:
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self._store.num_shards,
                    thread_name_prefix="repro-shard",
                )
            return self._thread_pool

    def _ensure_leases(self) -> list[_PoolLease]:
        with self._exec_lock:
            leases: list[_PoolLease] = []
            for i, shard in enumerate(self._store.shards):
                lease = self._leases[i]
                if lease is None:
                    lease = _PoolLease(str(shard.path), self._shard_versions[i])
                    self._leases[i] = lease
                leases.append(lease)
            return leases

    def _respawn_lease(self, i: int) -> None:
        """Replace shard *i*'s pool with a fresh one (its worker died or
        hung); the old lease is released, not waited on -- a hung task
        cannot block the respawn."""
        with self._exec_lock:
            old = self._leases[i]
            self._leases[i] = _PoolLease(
                str(self._store.shards[i].path), self._shard_versions[i]
            )
        if old is not None:
            try:
                old.release()
            except Exception:  # noqa: BLE001 - a broken pool may refuse
                pass
        self._respawns += 1
        self._last_respawn_at[i] = time.monotonic()
        metrics.counter("shard.worker.respawns").inc()

    # ------------------------------------------------------------------
    # Search: scatter, reduce, (maybe) fallback scatter
    # ------------------------------------------------------------------
    def search(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
        discoverer_names: Sequence[str] | None = None,
    ) -> dict[str, list[DiscoveryResult]]:
        """Top-k per discoverer over the whole lake -- byte-identical to
        the same roster on an unsharded :class:`LakeIndex`."""
        if not self._built:
            self.build()
        if k <= 0:
            raise ValueError("k must be positive")
        if discoverer_names is not None:
            names = list(discoverer_names)
            if self._roster_names:
                missing = sorted(set(names) - set(self._roster_names))
                if missing:
                    raise KeyError(
                        f"unknown discoverers: {missing}; "
                        f"have {sorted(self._roster_names)}"
                    )
        else:
            # Ship the roster explicitly: a shard's *persisted* roster may
            # be wider than this index's (e.g. a pipeline opened with a
            # subset of the discoverers the store was built with), and the
            # workers must not widen the answer.
            names = list(self._roster_names) or None
        tracer = trace.current_tracer()
        critical_cpu = 0.0
        degraded_all: set[int] = set()
        with trace.span("discover.scatter", shards=self._store.num_shards) as scatter:
            scatter_span = scatter if tracer is not None else None
            answers, walls, cpus, degraded = self._scatter(
                query, k, query_column, names, "deferred", tracer, scatter_span
            )
            degraded_all.update(degraded)
            if not answers:
                raise StoreError(
                    f"discover scatter failed on every shard "
                    f"(shards {sorted(degraded_all)} dead after respawn + retry)"
                )
            self._observe_skew(walls, scatter)
            critical_cpu += max(cpus, default=0.0)
            ordered = names if names is not None else list(answers[0].keys())
            merged: dict[str, list[DiscoveryResult]] = {}
            needs_fallback: list[str] = []
            for name in ordered:
                payloads = [answer[name] for answer in answers]
                reduced = self._reduce(name, payloads, k)
                if reduced is None:
                    needs_fallback.append(name)
                else:
                    merged[name] = reduced
            if needs_fallback:
                fallback_answers, fallback_walls, fallback_cpus, degraded = (
                    self._scatter(
                        query, k, query_column, needs_fallback, "fallback",
                        tracer, scatter_span,
                    )
                )
                degraded_all.update(degraded)
                if not fallback_answers:
                    raise StoreError(
                        f"fallback scatter failed on every shard "
                        f"(shards {sorted(degraded_all)} dead after respawn + retry)"
                    )
                self._observe_skew(fallback_walls, scatter)
                critical_cpu += max(fallback_cpus, default=0.0)
                for name in needs_fallback:
                    rows = [
                        result
                        for answer in fallback_answers
                        for result in answer[name]
                    ]
                    rows.sort(key=lambda r: (-r.score, r.table_name))
                    merged[name] = rows[:k]
        self._last_critical_cpu_s = critical_cpu
        self._last_degraded = tuple(sorted(degraded_all))
        if degraded_all:
            metrics.counter("shard.scatter.degraded").inc()
        return {name: merged[name] for name in ordered}

    @property
    def last_critical_cpu_seconds(self) -> float:
        """The previous :meth:`search`'s critical path: per scatter round,
        the *maximum* over shards of each shard's own CPU seconds, summed
        across rounds.  This is the per-query latency a deployment with
        one core per shard would observe -- wall clock measures the same
        thing on an unloaded host with >= num_shards cores, but on a
        starved host it also counts time shards spend descheduled while
        their siblings run (``bench_shard`` gates whichever is honest for
        the machine it runs on)."""
        return self._last_critical_cpu_s

    def search_merged(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
    ) -> list[DiscoveryResult]:
        """The union of all discoverers' result sets (the integration-set
        construction)."""
        per_discoverer = self.search(query, k=k, query_column=query_column)
        return merge_result_sets(list(per_discoverer.values()))

    def _scatter(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        names: Sequence[str] | None,
        round_: str,
        tracer,
        scatter_span,
    ) -> tuple[list[dict[str, Any]], list[float], list[float], tuple[int, ...]]:
        """Run one round on every shard; returns (per-shard answers,
        per-shard wall seconds, per-shard own-CPU seconds, degraded shard
        indexes), answers in shard roster order with degraded shards
        omitted.  Thread mode has no supervision (a thread cannot die
        under the driver) so its degraded set is always empty."""
        num = self._store.num_shards
        if self._executor == "threads":
            pool = self._ensure_thread_pool()
            query.stats.warm()  # profile once; every shard thread reuses it

            def run(i: int) -> tuple[dict[str, Any], float, float]:
                index = self._shard_indexes[i]
                assert index is not None
                index.engine.default_budget = self._budget
                start = time.perf_counter()
                start_cpu = time.thread_time()
                if tracer is not None:
                    with trace.activate(tracer, parent=scatter_span):
                        with trace.span(
                            f"shard[{i}]", tables=len(self._store.shards[i])
                        ):
                            answer = self._run_local(
                                index, query, k, query_column, names, round_
                            )
                else:
                    answer = self._run_local(
                        index, query, k, query_column, names, round_
                    )
                return (
                    answer,
                    time.perf_counter() - start,
                    time.thread_time() - start_cpu,
                )

            futures = [pool.submit(run, i) for i in range(num)]
            outcomes = [future.result() for future in futures]
            return (
                [o[0] for o in outcomes],
                [o[1] for o in outcomes],
                [o[2] for o in outcomes],
                (),
            )

        leases = self._ensure_leases()
        document = encode_table(query)

        def payload_for(i: int) -> dict[str, Any]:
            doc: dict[str, Any] = {
                "query": document,
                "k": k,
                "column": query_column,
                "names": list(names) if names is not None else None,
                "budget": self._budget,
                "label": f"shard[{i}]",
                "round": round_,
                # Distributed trace propagation: the worker adopts this
                # request's id so its shipped-back tree grafts into the
                # same tree the client started.
                "trace_id": tracer.trace_id if tracer is not None else None,
            }
            # The fault plane is process-local, so an armed worker kill is
            # consumed driver-side at submit time and shipped as a poison
            # flag the worker honors with os._exit -- a *real* process
            # death, exercising the same BrokenProcessPool path an OOM
            # kill or segfault would.
            if inject.take_worker_kill(i):
                doc["_fault_kill"] = True
            return doc

        results: dict[int, dict[str, Any]] = {}
        failed: list[int] = []
        futures_by_shard: dict[int, Any] = {}
        for i in range(num):
            try:
                futures_by_shard[i] = leases[i].submit(
                    shard_worker.process_worker_run, payload_for(i)
                )
            except Exception:  # noqa: BLE001 - broken/closed pool at submit
                failed.append(i)
        for i, future in futures_by_shard.items():
            try:
                results[i] = future.result(timeout=self._scatter_timeout)
            except Exception:  # noqa: BLE001 - BrokenProcessPool / deadline
                failed.append(i)
        degraded: list[int] = []
        if failed:
            # Supervision: respawn each failed shard's pool, retry the
            # scatter once on those shards only.  A shard that fails its
            # retry too is dropped from this answer (degraded result) and
            # left with a fresh pool for the next query.
            metrics.counter("shard.scatter.failures").inc(len(failed))
            for i in sorted(failed):
                self._respawn_lease(i)
            leases = self._ensure_leases()
            retries: dict[int, Any] = {}
            for i in sorted(failed):
                try:
                    retries[i] = leases[i].submit(
                        shard_worker.process_worker_run, payload_for(i)
                    )
                except Exception:  # noqa: BLE001
                    retries[i] = None
            for i in sorted(failed):
                outcome = None
                future = retries.get(i)
                if future is not None:
                    try:
                        outcome = future.result(timeout=self._scatter_timeout)
                    except Exception:  # noqa: BLE001
                        outcome = None
                if outcome is None:
                    degraded.append(i)
                    self._respawn_lease(i)
                else:
                    results[i] = outcome
        answers: list[dict[str, Any]] = []
        walls: list[float] = []
        cpus: list[float] = []
        for i in range(num):
            outcome = results.get(i)
            if outcome is None:
                continue
            answers.append(outcome["answer"])
            walls.append(outcome["wall_s"])
            cpus.append(outcome.get("cpu_s", outcome["wall_s"]))
            if tracer is not None:
                tracer.attach_tree(outcome["trace"], parent=scatter_span)
        return answers, walls, cpus, tuple(degraded)

    @staticmethod
    def _run_local(
        index: LakeIndex,
        query: Table,
        k: int,
        query_column: str | None,
        names: Sequence[str] | None,
        round_: str,
    ) -> dict[str, Any]:
        if round_ == "fallback":
            assert names is not None
            return shard_worker.fallback_search(index, query, k, query_column, names)
        return shard_worker.deferred_search(index, query, k, query_column, names)

    def _observe_skew(self, walls: list[float], scatter_span) -> None:
        if not walls:
            return
        mean = sum(walls) / len(walls)
        skew = (max(walls) / mean) if mean > 0 else 1.0
        metrics.histogram("shard.scatter.skew", bounds=_SKEW_BOUNDS).observe(skew)
        scatter_span.add(skew=round(skew, 3))

    def _reduce(
        self, name: str, payloads: list[dict[str, Any]], k: int
    ) -> list[DiscoveryResult] | None:
        """Merge one discoverer's per-shard answers; None means the
        global retrieved count is under the fallback floor and a second
        (exhaustive, evidence-retained) scatter must run.

        Mirrors the unsharded ``CandidateEngine._finalize`` exactly: the
        floor is judged on the summed pre-cap retrieved count; an active
        budget keeps the top-budget tables of the *union* strength
        totals under the engine's ``(-strength, name)`` order (shards
        are disjoint, so the union is collision-free and equals the
        global totals); the final ranking is the scorers' shared
        ``(-score, table_name)`` total order.
        """
        results = [result for payload in payloads for result in payload["results"]]
        reports = [p["report"] for p in payloads if p.get("report")]
        lake_size = len(self._store)
        probes = sum(int(r.get("probes", 0)) for r in reports)
        channels = list(reports[0]["channels"]) if reports else []
        if any(p["mode"] == "assemble" for p in payloads):
            retrieved = sum(int(p["retrieved"]) for p in payloads)
            floor = max(int(p["floor"]) for p in payloads)
            if retrieved < floor:
                # The same predicate _finalize evaluates, on the global
                # count; round two scores the whole lake per shard.
                self._last_reports[name] = {
                    "discoverer": name,
                    "channels": channels,
                    "probes": probes,
                    "retrieved": retrieved,
                    "scored": lake_size,
                    "lake_size": lake_size,
                    "fallback": True,
                    "truncated": False,
                    "exhaustive": False,
                }
                return None
            budget = payloads[0]["budget"]
            truncated = False
            if budget is not None:
                union: dict[str, float] = {}
                for payload in payloads:
                    union.update(payload.get("totals") or {})
                if len(union) > budget:
                    truncated = True
                    kept = set(
                        sorted(union, key=lambda t: (-union[t], t))[:budget]
                    )
                    results = [r for r in results if r.table_name in kept]
            self._last_reports[name] = {
                "discoverer": name,
                "channels": channels,
                "probes": probes,
                "retrieved": retrieved,
                "scored": budget if truncated else retrieved,
                "lake_size": lake_size,
                "fallback": False,
                "truncated": truncated,
                "exhaustive": False,
            }
        elif any(p["mode"] == "exhaustive" for p in payloads):
            self._last_reports[name] = {
                "discoverer": name,
                "channels": ["exhaustive"],
                "probes": 0,
                "retrieved": lake_size,
                "scored": lake_size,
                "lake_size": lake_size,
                "fallback": False,
                "truncated": False,
                "exhaustive": True,
            }
        else:  # every shard said "empty": unprobeable query, never falls back
            self._last_reports[name] = {
                "discoverer": name,
                "channels": channels,
                "probes": probes,
                "retrieved": 0,
                "scored": 0,
                "lake_size": lake_size,
                "fallback": False,
                "truncated": False,
                "exhaustive": False,
            }
        results.sort(key=lambda r: (-r.score, r.table_name))
        return results[:k]

    # ------------------------------------------------------------------
    # Worker metrics (process mode)
    # ------------------------------------------------------------------
    def worker_metrics(self) -> dict[str, Any] | None:
        """The shard workers' metrics registries folded into one snapshot
        (None in thread mode, where workers share the process registry)."""
        if self._executor != "processes":
            return None
        merged: dict[str, Any] | None = None
        for lease in self._leases:
            if lease is None:
                continue
            try:
                snapshot = lease.submit(
                    shard_worker.process_worker_metrics, None
                ).result(timeout=5.0)
            except Exception:  # noqa: BLE001 - diagnostics must not fail serving
                continue
            merged = (
                snapshot if merged is None else metrics.merge_snapshots(merged, snapshot)
            )
        return merged

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this index's executor resources (pool leases are
        refcounted: a successor generation holding an acquired lease
        keeps its worker alive)."""
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False)
            self._thread_pool = None
        leases, self._leases = self._leases, [None] * self._store.num_shards
        for lease in leases:
            if lease is not None:
                lease.release()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShardedLakeIndex({self._store.num_shards} shards, "
            f"executor={self._executor!r}, built={self._built})"
        )
