"""The sharded lake store: N LakeStore shards under one manifest.

Layout on disk::

    <root>/lake.json        the manifest-of-manifests (roster + routing)
    <root>/shard-000/       a complete, independent LakeStore
    <root>/shard-001/
    ...

``lake.json`` records the shard roster and the routing rule (seed +
count); each shard keeps its own ``manifest.json`` / ``version.json`` /
segments / postings exactly as an unsharded store would.  Routing is a
stable content hash of the *table name* (sha1 of ``"<seed>:<name>"``
mod N), so a table's home shard never depends on what else is in the
lake, and an ingest or remove of one table touches exactly one shard --
only that shard's ``lake_version`` moves and only its persisted
postings/indexes invalidate.

The *lake epoch* is the sum of the per-shard ``lake_version`` counters.
Each counter is monotonic under its own commits, shards are disjoint,
and every mutation goes through exactly one shard -- so the sum is
monotonic too and satisfies the same ``current_version()`` polling
contract :class:`repro.service.LakeService` uses for hot reload.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..datalake.catalog import DataLake
from ..datalake.stats import LakeStats
from ..faults import inject
from ..store import journal
from ..store.lakestore import (
    IngestReport,
    LakeStore,
    StoreError,
    StoreNotFound,
)
from ..table.stats import TableStats
from ..table.table import Table

__all__ = [
    "ShardedLakeStore",
    "ShardedDataLake",
    "ShardedLakeStats",
    "open_any_store",
    "recover_any_store",
]

_FORMAT = "repro-sharded-lake"
_FORMAT_VERSION = 1
_FIT_STATE_FILE = "global_fit.pkl"


def shard_route(name: str, seed: int, num_shards: int) -> int:
    """The routing rule: a stable hash of the table *name* alone.

    sha1 keyed by the routing seed, first 8 hex digits, mod N -- stable
    across processes and Python versions (never ``hash()``, which is
    salted per process), and independent of lake contents so a table
    can never migrate shards as its neighbors change.
    """
    digest = hashlib.sha1(f"{seed}:{name}".encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % num_shards


def open_any_store(path: str | Path, **open_options: Any):
    """Open *path* as whichever store layout lives there.

    A ``lake.json`` marks a sharded root; a ``manifest.json`` marks a
    plain :class:`LakeStore`.  Everything that accepts a store path
    (``Dialite.open``, the service, the CLI) funnels through here so
    sharded layouts are adopted transparently.
    """
    path = Path(path)
    if (path / "lake.json").exists():
        return ShardedLakeStore.open(path, **open_options)
    return LakeStore.open(path, **open_options)


def recover_any_store(path: str | Path) -> list[dict[str, Any]]:
    """Run crash recovery on whichever store layout lives at *path*,
    without fully opening it (the ``repro store recover`` verb).  Returns
    one summary dict per repair performed (empty = nothing to do).

    Opening a store runs the same recovery implicitly; this entry point
    exists for operators who want to settle a crashed writer's journal --
    and see what it did -- before pointing a service at the directory.
    """
    path = Path(path)
    repairs: list[dict[str, Any]] = []
    if (path / "lake.json").exists() or (
        journal.read_journal(path) or {}
    ).get("op") == "rebalance":
        root = ShardedLakeStore._recover(path)
        if root:
            repairs.append(root)
        manifest_path = path / "lake.json"
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            for name in manifest.get("shards", []):
                fixed = LakeStore.recover(path / name)
                if fixed:
                    repairs.append(dict(fixed, shard=name))
        return repairs
    fixed = LakeStore.recover(path)
    if fixed:
        repairs.append(fixed)
    return repairs


class ShardedLakeStore:
    """N :class:`LakeStore` shards behind the single-store contract.

    Duck-types the surface the pipeline, serving layer and CLI consume
    (``lake_version`` / ``current_version`` / ``reopen`` / ``ingest`` /
    ``remove`` / ``lake()`` / ``info()`` / segment-format accessors), so
    callers holding "a store" need no sharding awareness beyond the
    ``isinstance`` branches that pick the sharded index builder.
    """

    def __init__(
        self,
        path: Path,
        manifest: dict[str, Any],
        shards: list[LakeStore],
        stats_cache_capacity: int | None = None,
    ):
        self._path = Path(path)
        self._manifest = manifest
        self._shards = shards
        self._stats_cache_capacity = stats_cache_capacity

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        num_shards: int = 4,
        routing_seed: int = 0,
        exist_ok: bool = False,
        **shard_options: Any,
    ) -> "ShardedLakeStore":
        """Initialize an empty sharded lake at *path*.

        *shard_options* (``sketch_config``, ``segment_format``) forward to
        every shard's :meth:`LakeStore.create`.
        """
        path = Path(path)
        if (path / "lake.json").exists():
            if not exist_ok:
                raise StoreError(
                    f"a sharded lake already exists at {path}; open() it instead"
                )
            return cls.open(path)
        if (path / "manifest.json").exists():
            raise StoreError(
                f"{path} already holds an unsharded lake store; "
                f"pick a fresh directory (or rebalance into one)"
            )
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        path.mkdir(parents=True, exist_ok=True)
        shard_names = [f"shard-{i:03d}" for i in range(num_shards)]
        shards = [
            LakeStore.create(path / name, **shard_options) for name in shard_names
        ]
        manifest = {
            "format": _FORMAT,
            "format_version": _FORMAT_VERSION,
            "num_shards": num_shards,
            "routing_seed": routing_seed,
            "shards": shard_names,
        }
        store = cls(path, manifest, shards)
        store._write_manifest()
        return store

    @classmethod
    def open(
        cls,
        path: str | Path,
        stats_cache_capacity: int | None = None,
        **shard_options: Any,
    ) -> "ShardedLakeStore":
        path = Path(path)
        cls._recover(path)
        manifest_path = path / "lake.json"
        if not manifest_path.exists():
            raise StoreNotFound(f"no sharded lake manifest at {path}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != _FORMAT:
            raise StoreError(f"{manifest_path} is not a {_FORMAT} manifest")
        if manifest.get("format_version", 0) > _FORMAT_VERSION:
            raise StoreError(
                f"sharded lake at {path} uses format version "
                f"{manifest['format_version']}, this library reads up to "
                f"{_FORMAT_VERSION}"
            )
        shards = [
            LakeStore.open(
                path / name,
                stats_cache_capacity=stats_cache_capacity,
                **shard_options,
            )
            for name in manifest["shards"]
        ]
        return cls(path, manifest, shards, stats_cache_capacity=stats_cache_capacity)

    @classmethod
    def _recover(cls, path: Path) -> dict[str, Any] | None:
        """Settle an interrupted :meth:`rebalance` (runs at the top of
        :meth:`open`; per-shard journals are handled by each shard's own
        :meth:`LakeStore.recover`).

        The ``lake.json`` replace is the commit point.  Journal txn ==
        manifest txn means the new layout committed: finish the cleanup
        (drop the ``.old-<txn>`` shard backups, the staging directory and
        the stale global fit state).  A mismatch means it never
        committed: restore every backed-up shard directory, delete any
        new-layout directories that were already moved in, and drop
        staging -- placement is unique again either way, never a table in
        two live shards.

        As with :meth:`LakeStore.recover`, a journal whose rebalancer is
        still alive (root writer lock held) is left untouched.
        """
        if journal.read_journal(path) is None:
            return None
        lock = journal.acquire_writer_lock(path, blocking=False)
        if lock is None:
            # Live rebalance in progress; nothing has crashed.
            return None
        try:
            return cls._settle(path)
        finally:
            lock.release()

    @classmethod
    def _settle(cls, path: Path) -> dict[str, Any] | None:
        """Settlement body of :meth:`_recover`; caller holds the root
        writer lock, so re-read the journal under it."""
        doc = journal.read_journal(path)
        (path / (journal.JOURNAL_NAME + ".tmp")).unlink(missing_ok=True)
        if doc is None:
            return None
        if doc.get("op") != "rebalance":
            # A foreign journal at a sharded root is stray intent from a
            # never-started operation; nothing was written under it.
            journal.journal_path(path).unlink(missing_ok=True)
            return None
        manifest_path = path / "lake.json"
        manifest: dict[str, Any] = {}
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:  # pragma: no cover - torn writes
                manifest = {}               # are prevented by tmp+replace
        committed = manifest.get("txn") == doc.get("txn")
        staging = path.parent / doc.get("staging", path.name + ".rebalance")
        backups: dict[str, str] = doc.get("backups", {})
        if committed:
            for backup in backups.values():
                shutil.rmtree(path / backup, ignore_errors=True)
            (path / _FIT_STATE_FILE).unlink(missing_ok=True)
        else:
            old_names = set(doc.get("old_shards", []))
            for name, backup in backups.items():
                backup_dir = path / backup
                if backup_dir.exists():
                    current = path / name
                    if current.exists():
                        shutil.rmtree(current)
                    os.replace(backup_dir, current)
            for name in doc.get("new_shards", []):
                if name not in old_names and (path / name).exists():
                    shutil.rmtree(path / name)
        shutil.rmtree(staging, ignore_errors=True)
        (path / "lake.json.tmp").unlink(missing_ok=True)
        journal.journal_path(path).unlink(missing_ok=True)
        journal.fsync_dir(path)
        return {
            "op": "rebalance",
            "action": "rolled_forward" if committed else "rolled_back",
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_shards(self) -> int:
        return int(self._manifest["num_shards"])

    @property
    def routing_seed(self) -> int:
        return int(self._manifest["routing_seed"])

    @property
    def shards(self) -> list[LakeStore]:
        return list(self._shards)

    @property
    def shard_names(self) -> list[str]:
        return list(self._manifest["shards"])

    @property
    def sketch_config(self):
        return self._shards[0].sketch_config

    @property
    def stats_cache_capacity(self) -> int | None:
        return self._stats_cache_capacity

    def shard_of(self, name: str) -> int:
        """The shard index owning table *name* (routing rule)."""
        return shard_route(name, self.routing_seed, self.num_shards)

    def shard_for(self, name: str) -> LakeStore:
        return self._shards[self.shard_of(name)]

    @property
    def lake_version(self) -> int:
        """The lake epoch: sum of the shard handles' manifest versions."""
        return sum(shard.lake_version for shard in self._shards)

    def current_version(self) -> int:
        """The epoch committed on disk (cheap per-shard version.json polls
        -- the serving layer's hot-reload probe)."""
        return sum(shard.current_version() for shard in self._shards)

    def shard_versions(self) -> list[int]:
        """Per-shard manifest versions, in roster order."""
        return [shard.lake_version for shard in self._shards]

    def reopen(self) -> "ShardedLakeStore":
        """A fresh handle on the current on-disk state of every shard."""
        return type(self).open(
            self._path, stats_cache_capacity=self._stats_cache_capacity
        )

    @property
    def default_segment_format(self) -> str:
        return self._shards[0].default_segment_format

    def segment_format_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for shard in self._shards:
            for fmt, n in shard.segment_format_counts().items():
                counts[fmt] = counts.get(fmt, 0) + n
        return counts

    @property
    def table_names(self) -> list[str]:
        """Every table name, sorted (shard-order independent)."""
        names: list[str] = []
        for shard in self._shards:
            names.extend(shard.table_names)
        names.sort()
        return names

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self.shard_for(name)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __repr__(self) -> str:
        return (
            f"ShardedLakeStore({str(self._path)!r}, {self.num_shards} shards, "
            f"epoch {self.lake_version}, {len(self)} tables)"
        )

    def info(self) -> dict[str, Any]:
        """A JSON-friendly summary (what ``repro index info`` and
        ``repro store shard info`` print)."""
        shard_infos = [shard.info() for shard in self._shards]
        return {
            "path": str(self._path),
            "format_version": self._manifest["format_version"],
            "sharded": True,
            "num_shards": self.num_shards,
            "routing_seed": self.routing_seed,
            "lake_version": self.lake_version,
            "segment_format": self.default_segment_format,
            "segment_format_counts": self.segment_format_counts(),
            "num_tables": len(self),
            "total_rows": sum(i["total_rows"] for i in shard_infos),
            "sketch": self.sketch_config.to_json(),
            "shards": [
                {
                    "name": name,
                    "lake_version": info["lake_version"],
                    "num_tables": info["num_tables"],
                    "total_rows": info["total_rows"],
                    "indexes": info["indexes"],
                }
                for name, info in zip(self.shard_names, shard_infos)
            ],
            "indexes": sorted(
                {d for info in shard_infos for d in info["indexes"]}
            ),
        }

    # ------------------------------------------------------------------
    # Mutation (each table's writes land on exactly one shard)
    # ------------------------------------------------------------------
    def ingest(
        self,
        lake: Mapping[str, Table],
        prune: bool = True,
        adopt_stats: bool = True,
        segment_format: str | None = None,
    ) -> IngestReport:
        """Route *lake* through the shards; merge the per-shard reports.

        With ``prune`` every shard also drops its tables absent from
        *lake* (routing is stable, so a surviving table is always present
        in its own shard's slice); without it, shards receiving no tables
        are not touched at all -- the single-table service ingest rewrites
        exactly one shard.
        """
        groups: list[dict[str, Table]] = [{} for _ in self._shards]
        for name, table in lake.items():
            groups[self.shard_of(name)][name] = table
        added: list[str] = []
        updated: list[str] = []
        unchanged: list[str] = []
        removed: list[str] = []
        for shard, group in zip(self._shards, groups):
            if not group and not prune:
                continue
            report = shard.ingest(
                group,
                prune=prune,
                adopt_stats=adopt_stats,
                segment_format=segment_format,
            )
            added.extend(report.added)
            updated.extend(report.updated)
            unchanged.extend(report.unchanged)
            removed.extend(report.removed)
        return IngestReport(
            added=tuple(sorted(added)),
            updated=tuple(sorted(updated)),
            removed=tuple(sorted(removed)),
            unchanged=tuple(sorted(unchanged)),
            lake_version=self.lake_version,
        )

    def remove(self, name: str) -> None:
        """Drop one table from its home shard (only that shard's version
        moves and only its artifacts invalidate)."""
        self.shard_for(name).remove(name)

    def migrate(self, segment_format: str = "v2") -> list[str]:
        """Rewrite every shard's segments into *segment_format*."""
        rewritten: list[str] = []
        for shard in self._shards:
            rewritten.extend(shard.migrate(segment_format))
        return sorted(rewritten)

    # ------------------------------------------------------------------
    # Reads (routed)
    # ------------------------------------------------------------------
    def load_table(self, name: str) -> Table:
        return self.shard_for(name).load_table(name)

    def load_column(self, name: str, column: str):
        return self.shard_for(name).load_column(name, column)

    def table_stats(self, name: str) -> TableStats:
        return self.shard_for(name).table_stats(name)

    def lake(self) -> "ShardedDataLake":
        """The combined contents as a lazy, read-only :class:`DataLake`."""
        return ShardedDataLake(self)

    def index_build_seconds(self) -> dict[str, float]:
        """Recorded per-discoverer build time, summed across shards (the
        sequential cost; a parallel build's wall time is lower)."""
        merged: dict[str, float] = {}
        for shard in self._shards:
            for name, seconds in shard.index_build_seconds().items():
                merged[name] = merged.get(name, 0.0) + seconds
        return merged

    # ------------------------------------------------------------------
    # Global fit state (lake-wide discoverer products, shared by shards)
    # ------------------------------------------------------------------
    def save_fit_state(self, payload: dict[str, Any]) -> None:
        """Persist lake-global fit products (synthesized KB, corpus IDF)
        pinned to the epoch they were computed at.  Shard fits inject
        these so every shard scores with lake-wide statistics -- the
        byte-identity requirement (see :mod:`repro.shard.index`)."""
        payload = dict(payload)
        payload["epoch"] = self.lake_version
        file = self._path / _FIT_STATE_FILE
        temp = file.with_name(file.name + ".tmp")
        with temp.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temp.replace(file)

    def load_fit_state(self) -> dict[str, Any] | None:
        """The persisted global fit products, or None.  The payload's
        ``epoch`` records when it was computed; a partial refit after a
        single-shard ingest deliberately reuses the pinned state (all
        shards stay mutually consistent) -- rebuild or rebalance to
        refresh it (the drift caveat in README's "Sharded lakes")."""
        file = self._path / _FIT_STATE_FILE
        if not file.exists():
            return None
        with file.open("rb") as handle:
            payload = pickle.load(handle)
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------
    # Rebalance (re-route everything under a new shard count/seed)
    # ------------------------------------------------------------------
    def rebalance(
        self, num_shards: int, routing_seed: int | None = None
    ) -> "ShardedLakeStore":
        """Rewrite the lake under a new shard count (and optionally a new
        routing seed), returning a fresh handle on the result.

        Builds the new layout in a sibling staging directory, then swaps
        it in under the root intent journal: old shard directories are
        *renamed aside* (``<name>.old-<txn>``), the staged ones moved in,
        and the ``lake.json`` replace commits the swap -- a crash at any
        point recovers to exactly the old or the new placement (never a
        table visible in two live shards; see :meth:`_recover`).  Do not
        rebalance under live writers or concurrent opens, and expect to
        rebuild discoverer indexes afterwards -- every shard's version
        restarts, so all persisted indexes and the global fit state are
        invalidated (the fit-state file is dropped at commit).
        """
        if routing_seed is None:
            routing_seed = self.routing_seed
        staging = self._path.parent / (self._path.name + ".rebalance")
        if staging.exists():
            shutil.rmtree(staging)
        old_names = self.shard_names
        new_names = [f"shard-{i:03d}" for i in range(num_shards)]
        txn = journal.txn_id(
            "rebalance", old_names, new_names, routing_seed, self.shard_versions()
        )
        backups = {name: f"{name}.old-{txn[:8]}" for name in old_names}
        # Root writer lock for the whole swap: a concurrent open()'s
        # recovery must see this journal as live, not crashed.
        lock = journal.acquire_writer_lock(self._path)
        try:
            journal.write_journal(
                self._path,
                {
                    "op": "rebalance",
                    "txn": txn,
                    "staging": staging.name,
                    "old_shards": old_names,
                    "new_shards": new_names,
                    "backups": backups,
                },
            )
            fresh = type(self).create(
                staging, num_shards=num_shards, routing_seed=routing_seed
            )
            for name in self.table_names:
                fresh.ingest({name: self.load_table(name)}, prune=False)
            inject.fire("shard.rebalance.stage")
            # Swap: rename old shard dirs aside (revertible), move staged in.
            for name, backup in backups.items():
                os.replace(self._path / name, self._path / backup)
                inject.fire("shard.rebalance.backup", shard=name)
            for name in new_names:
                os.replace(staging / name, self._path / name)
                inject.fire("shard.rebalance.move", shard=name)
            manifest = dict(fresh._manifest)
            manifest["txn"] = txn
            self._manifest = manifest
            self._write_manifest()
            inject.fire("shard.rebalance.commit")
            # Committed: the cleanup below is exactly what roll-forward
            # recovery would finish after a crash from here on.
            (self._path / _FIT_STATE_FILE).unlink(missing_ok=True)
            for backup in backups.values():
                shutil.rmtree(self._path / backup, ignore_errors=True)
            shutil.rmtree(staging, ignore_errors=True)
            journal.clear_journal(self._path)
        finally:
            if lock is not None:
                lock.release()
        return self.reopen()

    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        file = self._path / "lake.json"
        temp = file.with_name(file.name + ".tmp")
        temp.write_text(
            json.dumps(self._manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        journal.fsync_file(temp)
        temp.replace(file)
        journal.fsync_dir(self._path)


class ShardedDataLake(DataLake):
    """The combined, read-only view over every shard's stored lake.

    Routes table access to the owning shard's lazy
    :class:`~repro.store.lakestore.StoredDataLake`, so materialized
    tables and hydrated stats snapshots are shared with any other
    consumer of the same shard handles (one scan ledger per shard).
    Iteration order is sorted by name: a pure function of the contents,
    independent of shard count or roster order.
    """

    def __init__(self, store: ShardedLakeStore):
        super().__init__(())
        self._store = store
        self._shard_views = [shard.lake() for shard in store.shards]

    @property
    def store(self) -> ShardedLakeStore:
        return self._store

    def add(self, table: Table) -> None:
        raise TypeError(
            "ShardedDataLake is read-only; ingest tables into the "
            "ShardedLakeStore instead"
        )

    def __getitem__(self, name: str) -> Table:
        return self._shard_views[self._store.shard_of(name)][name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.table_names)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def names(self) -> list[str]:
        return self._store.table_names

    def tables(self) -> list[Table]:
        return [self[name] for name in self._store.table_names]

    def total_rows(self) -> int:
        return sum(view.total_rows() for view in self._shard_views)

    @property
    def stats(self) -> "ShardedLakeStats":
        return ShardedLakeStats(self)

    def __repr__(self) -> str:
        return (
            f"ShardedDataLake({len(self)} tables, "
            f"{self._store.num_shards} shards, epoch {self._store.lake_version})"
        )


class ShardedLakeStats(LakeStats):
    """Lake-wide stats over a sharded lake, served from each shard's
    hydrated snapshots (never materializes cell data)."""

    def __init__(self, lake: ShardedDataLake):
        super().__init__(lake)
        self._store = lake.store

    def table(self, name: str) -> TableStats:
        return self._store.table_stats(name)

    def column(self, table_name: str, column: str):
        return self._store.table_stats(table_name).column(column)

    def __iter__(self) -> Iterator[tuple[str, TableStats]]:
        for name in self._store.table_names:
            yield name, self._store.table_stats(name)

    def warm(self) -> "ShardedLakeStats":
        for _, stats in self:
            stats.warm()
        return self

    def scan_counts(self) -> dict[tuple[str, str], int]:
        counts: dict[tuple[str, str], int] = {}
        for name, stats in self:
            for column, count in stats.scan_counts.items():
                counts[(name, column)] = count
        return counts
