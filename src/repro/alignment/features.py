"""Column featurization for holistic schema matching.

Each column of every table in the integration set is summarized once into an
:class:`AlignedColumn` carrying four evidence channels the matcher combines:

* the **value set** (sampled distinct normalized strings) -- direct overlap
  is the strongest unionability/joinability evidence;
* a **semantic type distribution** from the knowledge base -- this is what
  lets ``Country`` columns with *disjoint* values (Germany/Spain vs
  Canada/Mexico) still align, the role pretrained embeddings play in the
  original ALITE;
* the **header** -- useful but never trusted alone;
* a hashed **embedding** plus scalar statistics (numeric fraction, mean
  length) used for gating numeric columns away from text columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..embeddings.column import ColumnEmbedder, ColumnProfile
from ..discovery.kb import KnowledgeBase
from ..table.table import Table

__all__ = ["ColumnRef", "AlignedColumn", "featurize_tables"]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A column identified by (table name, column name)."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass
class AlignedColumn:
    """All matcher-visible evidence about one column."""

    ref: ColumnRef
    header: str
    values: frozenset[str]
    type_weights: dict[str, float]
    profile: ColumnProfile


def featurize_tables(
    tables: Sequence[Table],
    kb: KnowledgeBase | None = None,
    embedder: ColumnEmbedder | None = None,
    max_values: int = 500,
) -> list[AlignedColumn]:
    """Featurize every column of every table (tables must be uniquely named)."""
    names = [t.name for t in tables]
    if len(set(names)) != len(names):
        raise ValueError(f"integration-set tables must have unique names, got {names}")
    embedder = embedder or ColumnEmbedder()
    featurized = []
    for table in tables:
        for column in table.columns:
            # Values and normalized text sets are read from the shared
            # column-stats cache -- the same objects the discoverers use.
            stats = table.stats.column(column)
            non_null = stats.values
            sample = non_null[:max_values] if len(non_null) > max_values else non_null
            value_set = stats.text_values(max_values)
            type_weights: dict[str, float] = {}
            if kb is not None and sample:
                distinct = list(dict.fromkeys(str(v) for v in sample))
                for value in distinct:
                    for type_name in kb.types_of(value):
                        type_weights[type_name] = type_weights.get(type_name, 0.0) + 1.0
                for type_name in type_weights:
                    type_weights[type_name] /= len(distinct)
            featurized.append(
                AlignedColumn(
                    ref=ColumnRef(table.name, column),
                    header=column,
                    values=value_set,
                    type_weights=type_weights,
                    profile=embedder.profile(column, sample),
                )
            )
    return featurized
