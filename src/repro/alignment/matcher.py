"""Pairwise column matching: combining the evidence channels into one score.

The score is a convex combination of value overlap, semantic-type agreement,
header similarity and embedding cosine, multiplied by a *type gate* that
collapses the score when one column is clearly numeric and the other clearly
textual (numbers and names must never merge, whatever their headers say).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..embeddings.column import ColumnEmbedder
from ..text.distance import name_similarity
from ..text.similarity import containment, weighted_jaccard
from .features import AlignedColumn

__all__ = ["MatcherWeights", "column_pair_score"]


@dataclass(frozen=True)
class MatcherWeights:
    """Channel weights (need not sum to 1; the gate is multiplicative).

    Defaults are tuned on the synthetic-lake alignment benchmark (E11); the
    header weight is deliberately large enough that two *exactly* equal
    headers clear the default clustering threshold on their own -- column
    pairs like ``Vaccination Rate`` across unionable tables have disjoint
    value sets and no KB types, leaving the header as the only signal, just
    as in the paper's Figure 2.
    """

    value_overlap: float = 0.35
    type_agreement: float = 0.25
    header: float = 0.35
    embedding: float = 0.05
    numeric_gate: float = 0.15
    numeric_high: float = 0.8
    numeric_low: float = 0.2


def column_pair_score(
    a: AlignedColumn, b: AlignedColumn, weights: MatcherWeights | None = None
) -> float:
    """Similarity in [0, 1] between two columns from *different* tables."""
    w = weights or MatcherWeights()

    value_score = 0.0
    if a.values and b.values:
        value_score = max(containment(a.values, b.values), containment(b.values, a.values))

    type_score = 0.0
    if a.type_weights and b.type_weights:
        type_score = weighted_jaccard(a.type_weights, b.type_weights)

    header_score = name_similarity(a.header, b.header)
    # Noise floor: generic short-header resemblance ("id" vs "di") should
    # not accumulate; only confident name matches count.
    if header_score < 0.6:
        header_score = 0.0

    embedding_score = max(0.0, ColumnEmbedder.similarity(a.profile, b.profile))

    score = (
        w.value_overlap * value_score
        + w.type_agreement * type_score
        + w.header * header_score
        + w.embedding * embedding_score
    )

    numeric_a = a.profile.numeric_fraction
    numeric_b = b.profile.numeric_fraction
    mismatch = (numeric_a > w.numeric_high and numeric_b < w.numeric_low) or (
        numeric_b > w.numeric_high and numeric_a < w.numeric_low
    )
    if mismatch:
        score *= w.numeric_gate
    return min(1.0, score)
