"""Holistic schema matching: ALITE's "Align" stage (paper Sec. 2.2).

Columns across the integration set are featurized, scored pairwise, and
clustered under the same-table constraint; each cluster receives an
*integration ID* that the Full Disjunction then treats as an attribute name.
"""

from .aligner import Alignment, HolisticAligner
from .cluster import cluster_columns, cluster_columns_optimal, partition_objective
from .features import AlignedColumn, ColumnRef, featurize_tables
from .matcher import MatcherWeights, column_pair_score

__all__ = [
    "HolisticAligner",
    "Alignment",
    "ColumnRef",
    "AlignedColumn",
    "featurize_tables",
    "MatcherWeights",
    "column_pair_score",
    "cluster_columns",
    "cluster_columns_optimal",
    "partition_objective",
]
