"""Constrained greedy clustering of matched columns into integration IDs.

ALITE formulates holistic matching as clustering with a hard constraint: two
columns of the *same* table can never share a cluster (a table does not say
the same thing twice).  The reproduction uses the standard greedy
correlation-clustering approximation: visit candidate pairs in descending
score order and union their clusters unless that would violate the
same-table constraint.  Greedy + hard constraint is deterministic, fast, and
matches the original's behaviour on every fixture in our test suite.
"""

from __future__ import annotations

from typing import Sequence

from .features import AlignedColumn, ColumnRef
from .matcher import MatcherWeights, column_pair_score

__all__ = ["cluster_columns", "cluster_columns_optimal", "partition_objective"]


class _UnionFind:
    """Union-find whose components track the set of member tables, so the
    same-table constraint is an O(min) set-intersection check."""

    def __init__(self, columns: Sequence[AlignedColumn]):
        self._parent = list(range(len(columns)))
        self._tables: list[set[str]] = [{c.ref.table} for c in columns]

    def find(self, i: int) -> int:
        root = i
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[i] != root:
            self._parent[i], i = root, self._parent[i]
        return root

    def can_union(self, i: int, j: int) -> bool:
        root_i, root_j = self.find(i), self.find(j)
        if root_i == root_j:
            return False
        return not (self._tables[root_i] & self._tables[root_j])

    def union(self, i: int, j: int) -> None:
        root_i, root_j = self.find(i), self.find(j)
        if root_i == root_j:
            return
        # Attach the smaller component under the larger.
        if len(self._tables[root_i]) < len(self._tables[root_j]):
            root_i, root_j = root_j, root_i
        self._parent[root_j] = root_i
        self._tables[root_i] |= self._tables[root_j]

    def components(self) -> list[list[int]]:
        groups: dict[int, list[int]] = {}
        for i in range(len(self._parent)):
            groups.setdefault(self.find(i), []).append(i)
        return list(groups.values())


def cluster_columns(
    columns: Sequence[AlignedColumn],
    threshold: float = 0.30,
    weights: MatcherWeights | None = None,
) -> list[list[ColumnRef]]:
    """Cluster columns across tables; returns clusters of column refs.

    Only cross-table pairs scoring >= *threshold* are considered; ties are
    broken lexicographically so the clustering is fully deterministic.
    """
    scored: list[tuple[float, int, int]] = []
    for i in range(len(columns)):
        for j in range(i + 1, len(columns)):
            if columns[i].ref.table == columns[j].ref.table:
                continue
            score = column_pair_score(columns[i], columns[j], weights)
            if score >= threshold:
                scored.append((score, i, j))
    scored.sort(key=lambda item: (-item[0], columns[item[1]].ref, columns[item[2]].ref))

    uf = _UnionFind(columns)
    for _, i, j in scored:
        if uf.can_union(i, j):
            uf.union(i, j)

    clusters = []
    for component in uf.components():
        clusters.append(sorted(columns[i].ref for i in component))
    clusters.sort()
    return clusters


# ----------------------------------------------------------------------
# Exhaustive oracle (ALITE frames matching as an optimization problem)
# ----------------------------------------------------------------------
def partition_objective(
    columns: Sequence[AlignedColumn],
    clusters: Sequence[Sequence[int]],
    threshold: float = 0.30,
    weights: MatcherWeights | None = None,
) -> float:
    """Correlation-clustering objective of a partition: sum over
    intra-cluster cross-table pairs of ``score - threshold``.

    Pairs above threshold reward being together, pairs below punish --
    the objective the greedy algorithm approximates.
    """
    total = 0.0
    for cluster in clusters:
        for a in range(len(cluster)):
            for b in range(a + 1, len(cluster)):
                col_a, col_b = columns[cluster[a]], columns[cluster[b]]
                if col_a.ref.table == col_b.ref.table:
                    return float("-inf")  # constraint violated
                total += column_pair_score(col_a, col_b, weights) - threshold
    return total


def cluster_columns_optimal(
    columns: Sequence[AlignedColumn],
    threshold: float = 0.30,
    weights: MatcherWeights | None = None,
    max_columns: int = 9,
) -> list[list[ColumnRef]]:
    """The partition maximizing :func:`partition_objective`, by exhaustive
    enumeration of set partitions.  Exponential (Bell numbers); exists as a
    test oracle for the greedy algorithm and refuses more than
    *max_columns* columns.
    """
    n = len(columns)
    if n > max_columns:
        raise ValueError(f"optimal clustering is exponential; refusing {n} columns")

    best_clusters: list[list[int]] = [[i] for i in range(n)]
    best_value = partition_objective(columns, best_clusters, threshold, weights)

    def partitions(items: list[int]):
        if not items:
            yield []
            return
        first, rest = items[0], items[1:]
        for smaller in partitions(rest):
            for i in range(len(smaller)):
                yield smaller[:i] + [[first] + smaller[i]] + smaller[i + 1 :]
            yield [[first]] + smaller

    for candidate in partitions(list(range(n))):
        value = partition_objective(columns, candidate, threshold, weights)
        if value > best_value:
            best_value = value
            best_clusters = candidate

    clusters = [sorted(columns[i].ref for i in cluster) for cluster in best_clusters]
    clusters.sort()
    return clusters
