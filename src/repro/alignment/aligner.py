"""The public alignment API: tables in, integration IDs out.

This is ALITE's "Align" half (paper Sec. 2.2): holistic schema matching over
the whole integration set at once, assigning every column an *integration
ID* such that matched columns share an ID and -- hard constraint -- no two
columns of one table collide.  :meth:`Alignment.apply` renames the tables so
the subsequent (natural) Full Disjunction can key on column names alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..discovery.kb import KnowledgeBase, seed_knowledge_base
from ..embeddings.column import ColumnEmbedder
from ..obs import trace
from ..table.table import Table
from .cluster import cluster_columns
from .features import AlignedColumn, ColumnRef, featurize_tables
from .matcher import MatcherWeights

__all__ = ["Alignment", "HolisticAligner"]


@dataclass
class Alignment:
    """The result of holistic matching over an integration set."""

    #: column -> integration ID.
    assignments: dict[ColumnRef, str]
    #: clusters of matched columns (singletons included), deterministic order.
    clusters: list[list[ColumnRef]] = field(default_factory=list)

    def integration_id(self, table: str, column: str) -> str:
        """The integration ID assigned to one column."""
        return self.assignments[ColumnRef(table, column)]

    @property
    def num_ids(self) -> int:
        return len(set(self.assignments.values()))

    def apply(self, tables: Sequence[Table]) -> list[Table]:
        """Rename every table's columns to their integration IDs."""
        renamed = []
        for table in tables:
            mapping = {}
            for column in table.columns:
                ref = ColumnRef(table.name, column)
                if ref not in self.assignments:
                    raise KeyError(f"column {ref} was not part of this alignment")
                mapping[column] = self.assignments[ref]
            renamed.append(table.renamed(mapping))
        return renamed

    def matched_pairs(self) -> set[tuple[ColumnRef, ColumnRef]]:
        """All unordered cross-table pairs sharing an ID (for evaluation)."""
        pairs: set[tuple[ColumnRef, ColumnRef]] = set()
        for cluster in self.clusters:
            for i in range(len(cluster)):
                for j in range(i + 1, len(cluster)):
                    pairs.add((cluster[i], cluster[j]))
        return pairs


class HolisticAligner:
    """Configurable holistic schema matcher.

    The knowledge base supplies the semantic channel (see
    :mod:`repro.alignment.features`); pass ``kb=None`` to ablate it -- the
    alignment ablation benchmark (E11) measures exactly that difference.
    """

    def __init__(
        self,
        threshold: float = 0.30,
        kb: KnowledgeBase | None | str = "seed",
        weights: MatcherWeights | None = None,
        embedder: ColumnEmbedder | None = None,
    ):
        self.threshold = threshold
        if kb == "seed":
            self._kb: KnowledgeBase | None = seed_knowledge_base()
        else:
            self._kb = kb  # type: ignore[assignment]
        self.weights = weights or MatcherWeights()
        self._embedder = embedder or ColumnEmbedder()

    def align(self, tables: Sequence[Table]) -> Alignment:
        """Match columns across *tables* and assign integration IDs."""
        if not tables:
            raise ValueError("cannot align an empty integration set")
        with trace.span("align.featurize", tables=len(tables)) as featurize_span:
            columns = featurize_tables(tables, kb=self._kb, embedder=self._embedder)
            featurize_span.add(columns=len(columns))
        with trace.span("align.cluster") as cluster_span:
            clusters = cluster_columns(
                columns, threshold=self.threshold, weights=self.weights
            )
            cluster_span.add(clusters=len(clusters))
        header_of = {c.ref: c.header for c in columns}
        assignments: dict[ColumnRef, str] = {}
        used_ids: set[str] = set()
        for cluster in clusters:
            integration_id = self._pick_id(cluster, header_of, used_ids)
            used_ids.add(integration_id)
            for ref in cluster:
                assignments[ref] = integration_id
        return Alignment(assignments=assignments, clusters=clusters)

    @staticmethod
    def _pick_id(
        cluster: Sequence[ColumnRef],
        header_of: dict[ColumnRef, str],
        used: set[str],
    ) -> str:
        """Human-friendly unique ID: the cluster's most common header, with a
        numeric suffix when another cluster already claimed it."""
        counts: dict[str, int] = {}
        for ref in cluster:
            header = header_of[ref].strip() or "col"
            counts[header] = counts.get(header, 0) + 1
        best = max(counts.items(), key=lambda item: (item[1], -len(item[0]), item[0]))[0]
        if best not in used:
            return best
        suffix = 2
        while f"{best}_{suffix}" in used:
            suffix += 1
        return f"{best}_{suffix}"
