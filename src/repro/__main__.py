"""``python -m repro`` -- the DIALITE command-line interface."""

import sys

from .cli import main

sys.exit(main())
