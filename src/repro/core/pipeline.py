"""The DIALITE pipeline: discover -> align & integrate -> analyze.

:class:`Dialite` wires every substrate together behind the three-stage API
of the paper's Figure 1.  Each stage is independently callable (the demo's
three demonstration items) and each stage's machinery is swappable through
registries:

* ``discoverers`` -- defaults: SANTOS union search + LSH Ensemble join
  search (+ JOSIE available by name); add your own with
  :meth:`add_discoverer`, including bare similarity functions (Fig. 4);
* ``integrators`` -- default ALITE Full Disjunction on the interned
  partition-first kernel (``Dialite(fd_workers=N)`` switches the default
  to the pool-backed ``parallel_fd``, identical results); outer/inner
  join and union pre-registered for comparison (Fig. 6);
* ``apps`` -- describe / aggregation / correlation / entity resolution.

Typical use::

    from repro import Dialite
    from repro.datalake import DataLake

    pipeline = Dialite(DataLake.from_dir("my_lake/")).fit()
    outcome = pipeline.discover(query_table, k=5, query_column="City")
    integrated = pipeline.integrate(outcome.integration_set)
    stats = pipeline.analyze(integrated, "correlation",
                             columns=["Vaccination Rate", "Death Rate"])
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..alignment.aligner import Alignment, HolisticAligner
from ..analysis.apps import (
    AggregationApp,
    AnalysisApp,
    CorrelationApp,
    DescribeApp,
    EntityResolutionApp,
    HistogramApp,
    PivotApp,
)
from ..datalake.catalog import DataLake
from ..datalake.indexer import LakeIndex
from ..discovery.base import Discoverer, merge_result_sets
from ..discovery.custom import FunctionDiscoverer
from ..discovery.josie import JosieJoinSearch
from ..discovery.lshensemble import LSHEnsembleJoinSearch
from ..discovery.santos import SantosUnionSearch
from ..genquery.generator import generate_query_table
from ..integration.alite import AliteFD
from ..integration.base import Integrator
from ..integration.outerjoin import (
    InnerJoinIntegrator,
    OuterJoinIntegrator,
    UnionIntegrator,
)
from ..integration.parallel import ParallelFD
from ..integration.tuples import IntegratedTable
from ..obs import trace
from ..table.table import Table
from .registry import Registry
from .results import DiscoveryOutcome, PipelineResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store.lakestore import LakeStore

__all__ = ["Dialite"]


class Dialite:
    """The end-to-end table discovery & integration system."""

    def __init__(
        self,
        lake: DataLake | Mapping[str, Table] | Sequence[Table] | None = None,
        discoverers: Sequence[Discoverer] | None = None,
        aligner: HolisticAligner | None = None,
        default_integrator: str | None = None,
        store: "str | Path | LakeStore | None" = None,
        candidate_budget: int | None = None,
        fd_workers: int = 1,
    ):
        if store is not None:
            from ..shard.store import ShardedLakeStore, open_any_store
            from ..store.lakestore import LakeStore

            if not isinstance(store, (LakeStore, ShardedLakeStore)):
                # Auto-detect the layout: a directory with a
                # manifest-of-manifests (lake.json) opens as a sharded
                # lake, anything else as a single store.
                store = open_any_store(store)
            if lake is None:
                lake = store.lake()
        self._store = store
        if lake is None:
            lake = DataLake()
        elif not isinstance(lake, DataLake):
            if isinstance(lake, Mapping):
                lake = DataLake.from_tables(lake.values())
            else:
                lake = DataLake.from_tables(lake)
        self.lake = lake
        self.aligner = aligner or HolisticAligner()
        #: Engine-wide candidate budget (the CLI's ``--candidate-budget``);
        #: None = unbudgeted retrieval, the identical-top-k default.
        self.candidate_budget = candidate_budget

        self.discoverers: Registry[Discoverer] = Registry("discoverer")
        for discoverer in discoverers if discoverers is not None else (
            SantosUnionSearch(),
            LSHEnsembleJoinSearch(),
            JosieJoinSearch(),
        ):
            self.discoverers.register(discoverer.name, discoverer)

        #: Worker-process count for the component-parallel FD integrator.
        #: ``fd_workers > 1`` registers a pool-backed ``parallel_fd`` and
        #: makes it the default integrator (unless one was named
        #: explicitly); ``1`` keeps the sequential partition-first
        #: ``alite_fd``.  Both run the interned integer kernel and produce
        #: identical results.
        self.fd_workers = max(1, fd_workers)
        self.integrators: Registry[Integrator] = Registry("integrator")
        for integrator in (
            AliteFD(),
            ParallelFD(max_workers=self.fd_workers),
            OuterJoinIntegrator(),
            InnerJoinIntegrator(),
            UnionIntegrator(),
        ):
            self.integrators.register(integrator.name, integrator)
        if default_integrator is None:
            default_integrator = "parallel_fd" if self.fd_workers > 1 else "alite_fd"
        self.default_integrator = default_integrator
        self.integrators.get(default_integrator)  # validate eagerly

        self.apps: Registry[AnalysisApp] = Registry("analysis app")
        for app in (
            DescribeApp(),
            AggregationApp(),
            CorrelationApp(),
            EntityResolutionApp(),
            HistogramApp(),
            PivotApp(),
        ):
            self.apps.register(app.name, app)

        #: A LakeIndex, or a ShardedLakeIndex when the store is sharded.
        self._index: Any | None = None

    @classmethod
    def open(cls, store_path: "str | Path | LakeStore", **options: Any) -> "Dialite":
        """A pipeline warm-started from a persistent lake store.

        Sharded layouts (a ``lake.json`` manifest-of-manifests written by
        ``repro store shard init`` / :class:`repro.shard.ShardedLakeStore`)
        are auto-detected; discovery then runs scatter-gather across the
        shards with byte-identical results.

        The lake is served lazily from the store's columnar segments with
        all column statistics pre-hydrated, and :meth:`fit` reuses any
        persisted fitted discoverer indexes -- so a process goes from zero
        to serving discovery queries without re-scanning a single cell.
        Build the store with ``repro index build`` or
        :meth:`repro.store.LakeStore.ingest` +
        :meth:`~repro.datalake.indexer.LakeIndex.save_to_store`.
        """
        return cls(store=store_path, **options)

    def serve(self, **options: Any) -> "Any":
        """This pipeline as a concurrent serving session
        (:class:`repro.service.LakeService`): a worker pool with bounded
        admission and deadlines, a lake-version-keyed result cache,
        discover micro-batching, and -- for store-backed pipelines -- a
        hot-swap reload path that follows on-disk ingests.  Keyword
        options are forwarded to ``LakeService`` (``workers``,
        ``queue_depth``, ``cache_capacity``, ``batch_window``, ...).
        """
        from ..service import LakeService

        return LakeService(pipeline=self, **options)

    @classmethod
    def with_all_discoverers(
        cls, lake: DataLake | Mapping[str, Table] | Sequence[Table] | None = None
    ) -> "Dialite":
        """A pipeline carrying every built-in discoverer: the paper's three
        (SANTOS, LSH Ensemble, JOSIE) plus the related-work reproductions
        (Starmie-, TUS- and COCOA-style)."""
        from ..discovery.cocoa import CocoaJoinSearch
        from ..discovery.starmie import StarmieUnionSearch
        from ..discovery.tus import TusUnionSearch

        return cls(
            lake,
            discoverers=(
                SantosUnionSearch(),
                LSHEnsembleJoinSearch(),
                JosieJoinSearch(),
                StarmieUnionSearch(),
                TusUnionSearch(),
                CocoaJoinSearch(),
            ),
        )

    # ------------------------------------------------------------------
    # Extensibility (paper Sec. 3.2)
    # ------------------------------------------------------------------
    def add_discoverer(
        self,
        discoverer: Discoverer | Callable[[Table, Table], float],
        name: str | None = None,
        replace: bool = False,
    ) -> Discoverer:
        """Register a discoverer, or wrap a bare ``f(query, candidate) ->
        float`` similarity function (the Fig. 4 extensibility path).  Newly
        added discoverers are fitted immediately if the lake is indexed."""
        if not isinstance(discoverer, Discoverer):
            discoverer = FunctionDiscoverer(discoverer, name=name or "user_defined")
        elif name is not None:
            discoverer.name = name
        self.discoverers.register(discoverer.name, discoverer, replace=replace)
        if self._index is not None:
            engine = getattr(self._index, "engine", None)
            if engine is not None:
                discoverer.fit(self.lake, engine=engine)
            # Sharded indexes have no single engine: the refit happens
            # per shard when the index lazily rebuilds.
            self._index = None  # rebuild lazily with the new roster
        return discoverer

    def add_integrator(self, integrator: Integrator, replace: bool = False) -> Integrator:
        """Register an integration operator (the Fig. 6 path)."""
        return self.integrators.register(integrator.name, integrator, replace=replace)

    def add_app(self, app: AnalysisApp, replace: bool = False) -> AnalysisApp:
        """Register a downstream analysis application."""
        return self.apps.register(app.name, app, replace=replace)

    # ------------------------------------------------------------------
    # Stage 0: query acquisition
    # ------------------------------------------------------------------
    def generate_query(self, prompt: str, **options: Any) -> Table:
        """Prompt -> query table (the GPT-3 substitute, Fig. 5)."""
        return generate_query_table(prompt, **options)

    # ------------------------------------------------------------------
    # Stage 1: discover
    # ------------------------------------------------------------------
    def fit(self, previous_index: "Any | None" = None) -> "Dialite":
        """Build all discovery indexes offline (idempotent); returns self.

        With a backing store (:meth:`open`), fitting hydrates persisted
        discoverer indexes instead of rebuilding them; discoverers without
        a persisted index (e.g. newly registered ones) are fitted against
        the hydrated lake, warm.  On a sharded store the index is a
        scatter-gather :class:`~repro.shard.ShardedLakeIndex`;
        *previous_index* (a still-serving sharded index over the same
        lake, the hot-reload path) donates per-shard state for every
        shard whose version did not move, so a single-table ingest
        rebuilds exactly one shard.
        """
        from ..shard.store import ShardedLakeStore

        if isinstance(self._store, ShardedLakeStore):
            from ..shard.index import ShardedLakeIndex

            # The registry keeps the prototypes (per-shard fitted clones
            # live inside the sharded index or its worker processes).
            self._index = ShardedLakeIndex.from_store(
                self._store,
                self.discoverers.components(),
                previous=(
                    previous_index
                    if isinstance(previous_index, ShardedLakeIndex)
                    else None
                ),
            )
        elif self._store is not None:
            self._index = LakeIndex.from_store(
                self._store, self.discoverers.components(), lake=self.lake
            )
            for discoverer in self._index.discoverers:
                # The hydrated instances replace the cold constructor
                # defaults so the registry and the index agree.
                self.discoverers.register(discoverer.name, discoverer, replace=True)
        else:
            self._index = LakeIndex(self.lake, self.discoverers.components()).build()
        self._index.set_candidate_budget(self.candidate_budget)
        return self

    @property
    def index(self) -> "Any":
        """The discovery index: a :class:`LakeIndex`, or a
        :class:`~repro.shard.ShardedLakeIndex` over a sharded store (both
        expose ``search`` / ``search_merged`` / ``retrieval_reports`` /
        ``set_candidate_budget``)."""
        if self._index is None:
            self.fit()
        assert self._index is not None
        return self._index

    def discover(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
        discoverer_names: Sequence[str] | None = None,
    ) -> DiscoveryOutcome:
        """Find related tables and form the integration set (Sec. 2.1).

        The integration set is the query plus the union of every requested
        discoverer's top-k (overlapping results deduplicated), preserving
        the merged ranking order.
        """
        if query.name in self.lake:
            raise ValueError(
                f"query table name {query.name!r} collides with a lake table; rename it"
            )
        with trace.span("pipeline.discover", query=query.name, k=k) as discover_span:
            per_discoverer = self.index.search(
                query, k=k, query_column=query_column, discoverer_names=discoverer_names
            )
            merged = merge_result_sets(list(per_discoverer.values()))
            integration_set = [query] + [self.lake[r.table_name] for r in merged]
            discover_span.add(
                discoverers=len(per_discoverer), integration_set=len(integration_set)
            )
        reports = self.index.retrieval_reports()
        return DiscoveryOutcome(
            query=query,
            per_discoverer=per_discoverer,
            merged=merged,
            integration_set=integration_set,
            retrieval={name: reports[name] for name in per_discoverer if name in reports},
            # Sharded indexes report shards that stayed dead through the
            # supervised retry; plain indexes have no such attribute.
            degraded_shards=tuple(
                getattr(self.index, "last_degraded_shards", ()) or ()
            ),
        )

    def discover_many(
        self,
        queries: Sequence[Table],
        k: int = 10,
        query_column: str | None = None,
        discoverer_names: Sequence[str] | None = None,
    ) -> list[DiscoveryOutcome]:
        """Batched discovery: one outcome per query, in input order.

        The lake index is built once, and each query table's column stats
        (token sets, MinHash signatures, distinct sets) are computed once
        and shared by *every* discoverer probing it -- so a batch of Q
        queries over D discoverers performs Q column-stat passes instead of
        Q x D.  Queries must have unique names that don't collide with lake
        tables (the same rule as :meth:`discover`).
        """
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise ValueError(f"discover_many queries must have unique names: {names}")
        self.index  # build once, outside the per-query loop
        return [
            self.discover(
                query, k=k, query_column=query_column,
                discoverer_names=discoverer_names,
            )
            for query in queries
        ]

    # ------------------------------------------------------------------
    # Stage 2: align & integrate
    # ------------------------------------------------------------------
    def align(self, tables: Sequence[Table]) -> Alignment:
        """Holistic schema matching only (inspectable intermediate)."""
        with trace.span("pipeline.align", tables=len(tables)):
            return self.aligner.align(tables)

    def integrate(
        self,
        tables: Sequence[Table] | DiscoveryOutcome,
        integrator: str | Integrator | None = None,
        align: bool = True,
        name: str = "integrated",
    ) -> IntegratedTable:
        """Align (optionally) and integrate an integration set (Sec. 2.2).

        *tables* may be a plain list (the traditional given-integration-set
        scenario) or a :class:`DiscoveryOutcome`.  ``align=False`` skips
        matching for pre-aligned inputs (shared columns already share
        names).
        """
        if isinstance(tables, DiscoveryOutcome):
            tables = tables.integration_set
        if isinstance(integrator, Integrator):
            chosen = integrator
        else:
            chosen = self.integrators.get(integrator or self.default_integrator)
        tables = list(tables)
        with trace.span(
            "pipeline.integrate", tables=len(tables), integrator=chosen.name
        ):
            if align:
                with trace.span("pipeline.align", tables=len(tables)):
                    tables = self.aligner.align(tables).apply(tables)
            return chosen.integrate(tables, name=name)

    # ------------------------------------------------------------------
    # Stage 3: analyze
    # ------------------------------------------------------------------
    def analyze(self, table: Table, app: str = "describe", **options: Any) -> Any:
        """Run a downstream application over an integrated table (Sec. 2.3)."""
        return self.apps.get(app).run(table, **options)

    def explain(self, integrated: IntegratedTable, oid: str) -> Table:
        """Attribute-level lineage of one integrated fact (``oid = "f3"``):
        which source tuples contributed each value, and why nulls are null.
        Works on results produced by the default (ALITE) integrator."""
        from ..integration.explain import explain_fact

        return explain_fact(integrated, oid)

    # ------------------------------------------------------------------
    # End to end
    # ------------------------------------------------------------------
    def run(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
        integrator: str | None = None,
        analyses: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> PipelineResult:
        """Discover, integrate and (optionally) analyze in one call.

        *analyses* maps app name -> options, e.g. ``{"correlation":
        {"columns": ["Vaccination Rate", "Death Rate"]}}``.
        """
        discovery = self.discover(query, k=k, query_column=query_column)
        integrated = self.integrate(discovery, integrator=integrator)
        results: dict[str, Any] = {}
        for app_name, options in (analyses or {}).items():
            results[app_name] = self.analyze(integrated, app_name, **dict(options))
        return PipelineResult(discovery=discovery, integrated=integrated, analyses=results)
