"""DIALITE's core: the three-stage pipeline and its plugin registries."""

from .pipeline import Dialite
from .registry import DuplicateComponentError, Registry
from .results import DiscoveryOutcome, PipelineResult

__all__ = [
    "Dialite",
    "Registry",
    "DuplicateComponentError",
    "DiscoveryOutcome",
    "PipelineResult",
]
