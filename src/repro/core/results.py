"""Result objects for the pipeline stages.

Each stage returns a structured, inspectable object -- the demo lets users
"interact with the system after each step so that they can validate the
intermediate results" (Sec. 2.4), and these objects are what there is to
inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..discovery.base import DiscoveryResult
from ..integration.tuples import IntegratedTable
from ..table.table import Table

__all__ = ["DiscoveryOutcome", "PipelineResult"]


@dataclass
class DiscoveryOutcome:
    """The discover stage's output: per-discoverer results, their union, and
    the resulting integration set (query table included, as in Sec. 2.1)."""

    query: Table
    per_discoverer: dict[str, list[DiscoveryResult]]
    merged: list[DiscoveryResult]
    integration_set: list[Table]
    #: Per-discoverer retrieval accounting for this query: candidate
    #: counts before scoring, channels used, fallback/truncation flags
    #: (what ``discover --explain`` prints).
    retrieval: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Shard ids omitted from this answer because their workers failed
    #: even after a respawn + retry (sharded lakes only; empty means the
    #: answer is complete).  Degraded outcomes are served but never
    #: cached -- see :mod:`repro.service.service`.
    degraded_shards: tuple[int, ...] = ()

    @property
    def discovered_names(self) -> list[str]:
        return [result.table_name for result in self.merged]

    def select(self, names: list[str]) -> list[Table]:
        """A user-chosen subset of the integration set (query always kept),
        mirroring the demo's 'select a subset of the discovered tables'."""
        chosen = {self.query.name, *names}
        unknown = set(names) - {t.name for t in self.integration_set}
        if unknown:
            raise KeyError(f"not in the integration set: {sorted(unknown)}")
        return [t for t in self.integration_set if t.name in chosen]

    def summary(self) -> Table:
        """One row per discovered table: score, who found it, why."""
        rows = [
            (r.table_name, round(r.score, 4), r.discoverer, r.reason)
            for r in self.merged
        ]
        return Table(["table", "score", "best_discoverer", "reason"], rows, name="discovery")


@dataclass
class PipelineResult:
    """End-to-end run: everything each stage produced."""

    discovery: DiscoveryOutcome
    integrated: IntegratedTable
    analyses: dict[str, Any] = field(default_factory=dict)

    @property
    def integration_set_names(self) -> list[str]:
        return [t.name for t in self.discovery.integration_set]
