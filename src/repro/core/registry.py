"""Plugin registries: DIALITE's extensibility backbone (paper Sec. 3.2).

The demo's selling point is that discovery algorithms, integration operators
and analysis apps are all user-replaceable.  A :class:`Registry` is a typed
name -> component map with defaults pre-registered by the pipeline; users
``register`` their own instances (or, for discovery, a bare similarity
function -- the Fig. 4 path) and select them by name.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

__all__ = ["Registry", "DuplicateComponentError"]

T = TypeVar("T")


class DuplicateComponentError(ValueError):
    """Raised when a component name is registered twice without replace."""


class Registry(Generic[T]):
    """An ordered, typed name -> component mapping."""

    def __init__(self, kind: str):
        self.kind = kind
        self._components: dict[str, T] = {}

    def register(self, name: str, component: T, replace: bool = False) -> T:
        """Add *component* under *name*; set ``replace=True`` to overwrite."""
        if not name:
            raise ValueError(f"{self.kind} name must be non-empty")
        if name in self._components and not replace:
            raise DuplicateComponentError(
                f"{self.kind} {name!r} already registered; pass replace=True to override"
            )
        self._components[name] = component
        return component

    def unregister(self, name: str) -> T:
        """Remove and return the component under *name*."""
        try:
            return self._components.pop(name)
        except KeyError:
            raise KeyError(self._missing_message(name)) from None

    def get(self, name: str) -> T:
        """The component under *name* (KeyError lists what exists)."""
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(self._missing_message(name)) from None

    def __contains__(self, name: object) -> bool:
        return name in self._components

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    @property
    def names(self) -> list[str]:
        return list(self._components)

    def components(self) -> list[T]:
        """All registered components, in registration order."""
        return list(self._components.values())

    def _missing_message(self, name: object) -> str:
        return (
            f"no {self.kind} named {name!r}; registered: {sorted(self._components)}"
        )

    def __repr__(self) -> str:
        return f"Registry({self.kind}: {sorted(self._components)})"
