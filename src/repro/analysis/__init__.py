"""Analysis: downstream applications over integrated tables (Sec. 2.3).

Aggregations, correlations, null accounting, integration-quality comparison
and the pluggable app interface the pipeline's analyze stage uses.
"""

from .aggregate import extreme, group_summary, histogram, numeric_column, top_k
from .apps import (
    AggregationApp,
    AnalysisApp,
    CorrelationApp,
    DescribeApp,
    EntityResolutionApp,
    HistogramApp,
    PivotApp,
)
from .correlation import column_correlation, correlation_matrix, pearson, spearman
from .quality import (
    IntegrationReport,
    compare_integrations,
    information_dominates,
    order_variability,
)
from .report import pipeline_report, table_to_markdown
from .stats import NullProfile, describe, fact_coverage, null_profile, outliers

__all__ = [
    "pearson",
    "spearman",
    "column_correlation",
    "correlation_matrix",
    "extreme",
    "top_k",
    "group_summary",
    "numeric_column",
    "histogram",
    "NullProfile",
    "null_profile",
    "describe",
    "fact_coverage",
    "outliers",
    "IntegrationReport",
    "compare_integrations",
    "information_dominates",
    "order_variability",
    "AnalysisApp",
    "DescribeApp",
    "AggregationApp",
    "CorrelationApp",
    "EntityResolutionApp",
    "HistogramApp",
    "PivotApp",
    "pipeline_report",
    "table_to_markdown",
]
