"""Run reports: one markdown document summarizing a pipeline run.

The demo lets users "interact with the system after each step"; headless
runs want the same visibility in one artifact.  ``pipeline_report`` renders
a :class:`~repro.core.results.PipelineResult` -- discovery ranking,
alignment/integration shape, null accounting, per-analysis results -- as
markdown suitable for a PR description or an experiment log.
"""

from __future__ import annotations

from typing import Any

from ..integration.tuples import IntegratedTable
from ..table.table import Table
from .stats import fact_coverage, null_profile

__all__ = ["pipeline_report", "table_to_markdown"]


def table_to_markdown(table: Table, max_rows: int = 25) -> str:
    """Render a table as GitHub-flavored markdown."""
    def cell_text(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:g}"
        return str(value).replace("|", "\\|")

    lines = ["| " + " | ".join(table.columns) + " |"]
    lines.append("|" + "---|" * table.num_columns)
    for row in table.rows[:max_rows]:
        lines.append("| " + " | ".join(cell_text(v) for v in row) + " |")
    if table.num_rows > max_rows:
        lines.append(f"\n*... {table.num_rows - max_rows} more rows*")
    return "\n".join(lines)


def _integration_section(integrated: IntegratedTable) -> list[str]:
    profile = null_profile(integrated)
    coverage = fact_coverage(integrated.provenance)
    lines = [
        "## Integration",
        "",
        f"- algorithm: `{integrated.algorithm or 'unknown'}`",
        f"- output: **{integrated.num_rows} facts × {integrated.num_columns} attributes**",
        f"- merged facts (≥2 sources): {coverage['merged_tuples']} "
        f"(mean {coverage['mean_sources']:.2f} sources/fact)",
        f"- nulls: {profile.missing} missing (±), {profile.produced} produced (⊥); "
        f"completeness {profile.completeness:.2%}",
        "",
        table_to_markdown(integrated.to_display_table(), max_rows=15),
    ]
    return lines


def _analysis_section(analyses: dict[str, Any]) -> list[str]:
    if not analyses:
        return []
    lines = ["## Analyses", ""]
    for app_name, result in analyses.items():
        lines.append(f"### {app_name}")
        lines.append("")
        if isinstance(result, Table):
            lines.append(table_to_markdown(result))
        elif isinstance(result, dict):
            for key, value in result.items():
                if isinstance(value, Table):
                    lines.append(f"**{key}**:")
                    lines.append("")
                    lines.append(table_to_markdown(value))
                else:
                    lines.append(f"- {key}: {value}")
        elif hasattr(result, "entities") and isinstance(result.entities, Table):
            lines.append(f"- entities: {result.num_entities}")
            lines.append("")
            lines.append(table_to_markdown(result.entities))
        else:
            lines.append(f"```\n{result}\n```")
        lines.append("")
    return lines


def pipeline_report(result: "Any", title: str = "DIALITE run report") -> str:
    """Markdown report for a :class:`~repro.core.results.PipelineResult`."""
    discovery = result.discovery
    lines = [f"# {title}", ""]

    lines.append("## Discovery")
    lines.append("")
    lines.append(
        f"- query: `{discovery.query.name}` "
        f"({discovery.query.num_rows}×{discovery.query.num_columns})"
    )
    lines.append(
        f"- integration set ({len(discovery.integration_set)} tables): "
        + ", ".join(f"`{t.name}`" for t in discovery.integration_set)
    )
    lines.append("")
    lines.append(table_to_markdown(discovery.summary()))
    lines.append("")

    lines.extend(_integration_section(result.integrated))
    lines.append("")
    lines.extend(_analysis_section(result.analyses))
    return "\n".join(lines).rstrip() + "\n"
