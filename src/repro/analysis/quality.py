"""Integration-quality comparison: the metrics behind experiment E9.

The paper's central argument is that Full Disjunction is the better
integration semantics: it maximizes connections among facts, is associative
(order-independent), and its completer tuples make downstream tasks work.
This module turns each of those claims into a measurable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..integration.tuples import IntegratedTable, normalized_key, subsumes
from ..table.table import Table
from .stats import fact_coverage, null_profile

__all__ = ["IntegrationReport", "compare_integrations", "information_dominates", "order_variability"]


@dataclass(frozen=True)
class IntegrationReport:
    """Scalar quality summary of one integration result."""

    algorithm: str
    tuples: int
    columns: int
    nulls: int
    missing_nulls: int
    produced_nulls: int
    completeness: float
    merged_tuples: int
    mean_sources: float

    @classmethod
    def from_integrated(cls, table: IntegratedTable) -> "IntegrationReport":
        nulls = null_profile(table)
        coverage = fact_coverage(table.provenance)
        return cls(
            algorithm=table.algorithm or "unknown",
            tuples=table.num_rows,
            columns=table.num_columns,
            nulls=nulls.nulls,
            missing_nulls=nulls.missing,
            produced_nulls=nulls.produced,
            completeness=round(nulls.completeness, 4),
            merged_tuples=int(coverage["merged_tuples"]),
            mean_sources=round(float(coverage["mean_sources"]), 4),
        )


def compare_integrations(results: Sequence[IntegratedTable]) -> Table:
    """Side-by-side report table for several integration results."""
    rows = []
    for result in results:
        report = IntegrationReport.from_integrated(result)
        rows.append(
            (
                report.algorithm,
                report.tuples,
                report.columns,
                report.nulls,
                report.missing_nulls,
                report.produced_nulls,
                report.completeness,
                report.merged_tuples,
                report.mean_sources,
            )
        )
    return Table(
        [
            "algorithm",
            "tuples",
            "columns",
            "nulls",
            "missing",
            "produced",
            "completeness",
            "merged_tuples",
            "mean_sources",
        ],
        rows,
        name="integration_comparison",
    )


def information_dominates(fd: Table, other: Table) -> bool:
    """Does every tuple of *other* appear in *fd* up to subsumption?

    This is the formal sense in which FD loses nothing relative to outer
    join: each outer-join tuple is subsumed by (or equal to) some FD tuple.
    Requires both tables to share a header (aligned integration results).
    """
    if set(other.columns) != set(fd.columns):
        return False
    positions = [other.column_index(c) for c in fd.columns]
    fd_rows = list(fd.rows)
    for row in other.rows:
        reordered = tuple(row[p] for p in positions)
        if not any(subsumes(fd_row, reordered) for fd_row in fd_rows):
            return False
    return True


def order_variability(results: Sequence[IntegratedTable]) -> dict[str, object]:
    """How much a (non-associative) operator's output varies across table
    orders: number of distinct outputs and the tuple-count range.

    Row content is compared null-kind-insensitively and order-insensitively;
    an associative operator (FD) yields exactly one distinct output.
    """
    signatures = set()
    counts = []
    for result in results:
        # Canonicalize column order first -- different table orders produce
        # different outer-union header orders for the *same* relation.
        ordered_columns = tuple(sorted(result.columns))
        positions = [result.column_index(c) for c in ordered_columns]
        signature = frozenset(
            normalized_key(tuple(row[p] for p in positions)) for row in result.rows
        )
        signatures.add((ordered_columns, signature))
        counts.append(result.num_rows)
    return {
        "orders_tried": len(results),
        "distinct_outputs": len(signatures),
        "min_tuples": min(counts) if counts else 0,
        "max_tuples": max(counts) if counts else 0,
    }
