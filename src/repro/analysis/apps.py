"""Downstream analysis applications (paper Sec. 2.3).

The analyze stage is pluggable like discovery and integration: an
:class:`AnalysisApp` takes the integrated table and returns a result object
(usually a table or a dict of scalars).  Shipping apps: aggregation summary,
correlation, descriptive statistics, and entity resolution.  Users register
their own through :class:`repro.core.registry.Registry`.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

from ..er.pipeline import EntityResolver, ERResult
from ..table.table import Table
from .aggregate import extreme, group_summary
from .correlation import column_correlation, correlation_matrix
from .stats import describe, null_profile

__all__ = [
    "AnalysisApp",
    "DescribeApp",
    "AggregationApp",
    "CorrelationApp",
    "EntityResolutionApp",
    "HistogramApp",
    "PivotApp",
]


class AnalysisApp(abc.ABC):
    """Base class for analyze-stage applications."""

    #: Identifier used by the pipeline registry.
    name: str = "app"

    @abc.abstractmethod
    def run(self, table: Table, **options: Any) -> Any:
        """Run the analysis over *table* and return its result."""


class DescribeApp(AnalysisApp):
    """Per-column summary plus a null profile."""

    name = "describe"

    def run(self, table: Table, **options: Any) -> dict[str, Any]:
        profile = null_profile(table)
        return {
            "summary": describe(table),
            "rows": table.num_rows,
            "columns": table.num_columns,
            "missing_nulls": profile.missing,
            "produced_nulls": profile.produced,
            "completeness": profile.completeness,
        }


class AggregationApp(AnalysisApp):
    """Example 3's flavor of analysis: extremes and group summaries.

    Options: ``value_column`` (required), ``label_column`` (for extremes),
    ``group_by`` (optional list).
    """

    name = "aggregation"

    def run(self, table: Table, **options: Any) -> dict[str, Any]:
        value_column: str = options["value_column"]
        result: dict[str, Any] = {}
        label_column = options.get("label_column")
        if label_column is not None:
            result["lowest"] = extreme(table, value_column, label_column, "min")
            result["highest"] = extreme(table, value_column, label_column, "max")
        group_by: Sequence[str] | None = options.get("group_by")
        if group_by:
            result["groups"] = group_summary(table, group_by, value_column)
        return result


class CorrelationApp(AnalysisApp):
    """Pairwise correlations (Example 3's 0.16 / 0.9 computation).

    Options: ``columns`` (pair or list; default all numeric-ish columns),
    ``method`` ("pearson" default, or "spearman").
    """

    name = "correlation"

    def run(self, table: Table, **options: Any) -> Any:
        method = options.get("method", "pearson")
        columns = options.get("columns")
        if columns is not None and len(columns) == 2:
            coefficient, support = column_correlation(table, columns[0], columns[1], method)
            return {"correlation": coefficient, "pairs_used": support, "method": method}
        return correlation_matrix(table, columns, method)


class EntityResolutionApp(AnalysisApp):
    """ER over the integrated table (the Figure 8(c)/(d) comparison).

    Options: ``resolver`` (an :class:`EntityResolver`; default configuration
    otherwise).
    """

    name = "entity_resolution"

    def run(self, table: Table, **options: Any) -> ERResult:
        resolver: EntityResolver = options.get("resolver") or EntityResolver()
        return resolver.resolve_table(table)


class HistogramApp(AnalysisApp):
    """Distribution view of one numeric-ish column.

    Options: ``column`` (required), ``bins`` (default 10).
    """

    name = "histogram"

    def run(self, table: Table, **options: Any) -> Table:
        from .aggregate import histogram

        return histogram(table, options["column"], bins=int(options.get("bins", 10)))


class PivotApp(AnalysisApp):
    """Long-to-wide reshape of the integrated table.

    Options: ``index``, ``columns``, ``values`` (required), ``agg``
    (default "mean").
    """

    name = "pivot"

    def run(self, table: Table, **options: Any) -> Table:
        from ..table.ops import pivot

        return pivot(
            table,
            index=options["index"],
            columns=options["columns"],
            values=options["values"],
            agg=options.get("agg", "mean"),
        )
