"""Correlations over (possibly messy, possibly null) table columns.

Example 3 of the paper computes Pearson correlations over the integrated
COVID table's ``Vaccination Rate`` ("63%"), ``Total Cases`` ("1.4M") and
``Death Rate`` columns; the values 0.16 and 0.9 it reports only come out if
percent/magnitude strings are parsed and null rows are pairwise-deleted --
both of which this module does.  Pearson and Spearman are implemented
directly (tests cross-check them against scipy).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..table.table import Table
from ..text.normalize import to_float

__all__ = ["pearson", "spearman", "column_correlation", "correlation_matrix"]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson's r; raises on length mismatch or fewer than 2 points.

    Returns 0.0 when either side has zero variance (degenerate but common
    in small integrated tables; callers get "no linear relationship" rather
    than an exception).
    """
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least 2 points for correlation")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: Sequence[float]) -> list[float]:
    """Fractional ranks (average rank for ties), 1-based."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1
        for position in range(i, j + 1):
            ranks[order[position]] = average
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman's rho: Pearson over fractional ranks (tie-aware)."""
    return pearson(_ranks(xs), _ranks(ys))


def _paired_numeric(table: Table, column_a: str, column_b: str) -> tuple[list[float], list[float]]:
    position_a = table.column_index(column_a)
    position_b = table.column_index(column_b)
    xs: list[float] = []
    ys: list[float] = []
    for row in table.rows:
        x = to_float(row[position_a])
        y = to_float(row[position_b])
        if x is None or y is None:
            continue
        xs.append(x)
        ys.append(y)
    return xs, ys


def column_correlation(
    table: Table, column_a: str, column_b: str, method: str = "pearson"
) -> tuple[float, int]:
    """Correlation between two columns with pairwise-complete parsing.

    Returns ``(coefficient, n_pairs_used)``; ``n_pairs_used`` makes the
    support of the estimate explicit (integrated tables are full of nulls).
    Raises if fewer than 2 complete pairs exist.
    """
    xs, ys = _paired_numeric(table, column_a, column_b)
    if method == "pearson":
        return pearson(xs, ys), len(xs)
    if method == "spearman":
        return spearman(xs, ys), len(xs)
    raise ValueError(f"unknown method {method!r}; use 'pearson' or 'spearman'")


def correlation_matrix(
    table: Table, columns: Sequence[str] | None = None, method: str = "pearson"
) -> Table:
    """All pairwise correlations among *columns* (default: columns where at
    least 2 cells parse as numbers), as a square table."""
    if columns is None:
        columns = [
            c
            for c in table.columns
            if sum(1 for v in table.column(c) if to_float(v) is not None) >= 2
        ]
    rows = []
    for a in columns:
        row: list = [a]
        for b in columns:
            if a == b:
                row.append(1.0)
                continue
            try:
                coefficient, _ = column_correlation(table, a, b, method)
            except ValueError:
                coefficient = float("nan")
            row.append(round(coefficient, 4))
        rows.append(tuple(row))
    return Table(["column", *columns], rows, name=f"{table.name}_corr")
