"""Aggregation queries over integrated tables (paper Sec. 2.3, Example 3).

Thin, null-aware conveniences over :func:`repro.table.ops.aggregate`: find
extremes ("Boston has the lowest vaccination rate"), top-k, and group
summaries, all parsing human-written numbers ("63%", "1.4M") on demand.
"""

from __future__ import annotations

from typing import Sequence

from ..table import ops
from ..table.table import Table
from ..table.values import Cell, is_null
from ..text.normalize import to_float

__all__ = ["extreme", "top_k", "group_summary", "numeric_column", "histogram"]


def numeric_column(table: Table, column: str) -> list[tuple[int, float]]:
    """``(row index, parsed number)`` for every row whose cell parses."""
    position = table.column_index(column)
    parsed = []
    for i, row in enumerate(table.rows):
        number = to_float(row[position])
        if number is not None:
            parsed.append((i, number))
    return parsed


def extreme(
    table: Table, value_column: str, label_column: str, mode: str = "max"
) -> tuple[Cell, float]:
    """The label holding the extreme value: e.g. ``extreme(t, "Vaccination
    Rate", "City", "min") -> ("Boston", 62.0)``.

    Rows where the value cell does not parse as a number are skipped; raises
    if nothing parses.
    """
    if mode not in ("min", "max"):
        raise ValueError("mode must be 'min' or 'max'")
    parsed = numeric_column(table, value_column)
    if not parsed:
        raise ValueError(f"no numeric values in column {value_column!r}")
    choose = min if mode == "min" else max
    row_index, value = choose(parsed, key=lambda pair: pair[1])
    return table.cell(row_index, label_column), value


def top_k(
    table: Table, value_column: str, k: int = 5, descending: bool = True
) -> Table:
    """The *k* rows with the largest (or smallest) parsed values."""
    parsed = numeric_column(table, value_column)
    parsed.sort(key=lambda pair: pair[1], reverse=descending)
    rows = [table.rows[i] for i, _ in parsed[:k]]
    return Table(table.columns, rows, name=f"{table.name}_top{k}")


def group_summary(
    table: Table,
    group_by: Sequence[str],
    value_column: str,
) -> Table:
    """count / mean / min / max of *value_column* per group, parsing
    human-written numbers first."""
    parsed = table.map_column(
        value_column,
        lambda cell: cell if is_null(cell) else (to_float(cell) if to_float(cell) is not None else cell),
    )
    return ops.aggregate(
        parsed,
        group_by=group_by,
        aggregations={
            "count": (value_column, "count"),
            "mean": (value_column, "mean"),
            "min": (value_column, "min"),
            "max": (value_column, "max"),
        },
    )


def histogram(table: Table, column: str, bins: int = 10) -> Table:
    """Equal-width histogram of a (parseable-)numeric column.

    Returns ``(bin_start, bin_end, count)`` rows; cells that do not parse as
    numbers are ignored (their count is visible via
    :func:`repro.analysis.stats.describe`).  A constant column yields one
    bin containing everything.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    parsed = [value for _, value in numeric_column(table, column)]
    if not parsed:
        raise ValueError(f"no numeric values in column {column!r}")
    low, high = min(parsed), max(parsed)
    if low == high:
        return Table(
            ["bin_start", "bin_end", "count"],
            [(low, high, len(parsed))],
            name=f"{table.name}_hist",
        )
    width = (high - low) / bins
    counts = [0] * bins
    for value in parsed:
        index = min(int((value - low) / width), bins - 1)
        counts[index] += 1
    rows = [
        (round(low + i * width, 6), round(low + (i + 1) * width, 6), counts[i])
        for i in range(bins)
    ]
    return Table(["bin_start", "bin_end", "count"], rows, name=f"{table.name}_hist")
