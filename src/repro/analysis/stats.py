"""Descriptive statistics and null accounting for (integrated) tables.

Integration quality is largely a story about nulls: how many, of which kind,
where.  These helpers power the analyze stage's summaries and the
FD-vs-outer-join quality benchmarks (E9).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..table.table import Table
from ..table.values import is_missing, is_null, is_produced
from ..text.normalize import to_float

__all__ = ["NullProfile", "null_profile", "describe", "fact_coverage", "outliers"]


@dataclass(frozen=True)
class NullProfile:
    """Null counts for one table, split by kind."""

    total_cells: int
    missing: int
    produced: int

    @property
    def nulls(self) -> int:
        return self.missing + self.produced

    @property
    def completeness(self) -> float:
        if self.total_cells == 0:
            return 1.0
        return 1.0 - self.nulls / self.total_cells


def null_profile(table: Table) -> NullProfile:
    """Count missing (``±``) and produced (``⊥``) nulls in *table*."""
    missing = produced = 0
    for row in table.rows:
        for cell in row:
            if is_missing(cell):
                missing += 1
            elif is_produced(cell):
                produced += 1
    return NullProfile(
        total_cells=table.num_rows * table.num_columns,
        missing=missing,
        produced=produced,
    )


def describe(table: Table) -> Table:
    """Per-column summary: dtype, non-null count, distinct count, numeric
    min/mean/max where applicable."""
    rows = []
    for spec in table.schema:
        values = table.column(spec.name)
        non_null = [v for v in values if not is_null(v)]
        numbers = [x for x in (to_float(v) for v in non_null) if x is not None]
        if numbers:
            minimum: object = min(numbers)
            mean: object = sum(numbers) / len(numbers)
            maximum: object = max(numbers)
        else:
            minimum = mean = maximum = ""
        rows.append(
            (
                spec.name,
                spec.dtype,
                len(non_null),
                len(set(map(str, non_null))),
                minimum,
                mean,
                maximum,
            )
        )
    return Table(
        ["column", "dtype", "non_null", "distinct", "min", "mean", "max"],
        rows,
        name=f"{table.name}_describe",
    )


def fact_coverage(provenance: tuple[frozenset[str], ...] | list[frozenset[str]]) -> dict[str, float]:
    """How much integration actually *connected*: distribution of output
    tuples by how many source tuples support them.

    Returns ``{"tuples": n, "merged_tuples": m, "max_sources": k,
    "mean_sources": x}`` -- FD should dominate outer join on the merged
    counts (experiment E9's headline metric).
    """
    sizes = [len(tids) for tids in provenance]
    if not sizes:
        return {"tuples": 0, "merged_tuples": 0, "max_sources": 0, "mean_sources": 0.0}
    return {
        "tuples": len(sizes),
        "merged_tuples": sum(1 for s in sizes if s >= 2),
        "max_sources": max(sizes),
        "mean_sources": sum(sizes) / len(sizes),
    }


def outliers(table: Table, column: str, z_threshold: float = 3.0) -> Table:
    """Rows whose parsed value in *column* lies more than *z_threshold*
    standard deviations from the column mean.

    The quick data-quality check an analyst runs right after integration:
    a merged fact with a wildly off value usually means a bad join, not a
    discovery.  Non-numeric and null cells are skipped; a column with zero
    variance has no outliers.
    """
    values = [(i, x) for i, row in enumerate(table.rows)
              if (x := to_float(row[table.column_index(column)])) is not None]
    if len(values) < 3:
        return Table(table.columns, [], name=f"{table.name}_outliers")
    numbers = [x for _, x in values]
    mean = sum(numbers) / len(numbers)
    variance = sum((x - mean) ** 2 for x in numbers) / len(numbers)
    if variance == 0.0:
        return Table(table.columns, [], name=f"{table.name}_outliers")
    stddev = variance ** 0.5
    rows = [table.rows[i] for i, x in values if abs(x - mean) / stddev > z_threshold]
    return Table(table.columns, rows, name=f"{table.name}_outliers")
