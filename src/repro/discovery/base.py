"""The discovery API: what every table-search algorithm implements.

DIALITE is explicitly pluggable here (Sec. 3.2 / Fig. 4 of the paper): a
discoverer is anything that can be fitted to a lake (``{name: Table}``) and
answer top-k searches for a query table.  The pipeline persists the union of
the result sets of *all* configured discoverers to form the integration set
(Sec. 3.1: "we persist the set of tables found by all techniques").

Two-phase search contract
-------------------------
``search`` runs in two phases.  **Retrieval** asks the shared
:class:`~repro.candidates.CandidateEngine` for a candidate set under the
discoverer's declared :class:`~repro.candidates.CandidateSpec` (inverted
token/value postings, the sketch prefilter, published labels -- or an
honest ``exhaustive`` for scorers with no sound sublinear signal).
**Scoring** (``_search``) ranks *only the retrieved candidates*; it must
never iterate the raw lake mapping (``make lint`` enforces this with an
AST guard).  When the engine is forced exhaustive -- the equivalence
tests' and benchmarks' full-scan baseline -- the candidate set is the
whole lake with no retrieval evidence, and scorers recompute what they
need from the shared column-stats cache.

The engine is *shared state*: ``LakeIndex.build`` threads one engine
through every fit; a standalone ``fit(lake)`` creates a private one.
Pickles drop the engine (it would duplicate the lake-wide structures per
discoverer); loaders (:meth:`LakeIndex.load
<repro.datalake.indexer.LakeIndex.load>` / ``from_store``) re-attach it
with :meth:`Discoverer.bind_engine`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..candidates.spec import CandidateSet, CandidateSpec
from ..obs import trace
from ..table.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..candidates.engine import CandidateEngine

__all__ = ["DiscoveryResult", "Discoverer", "merge_result_sets"]


@dataclass(frozen=True)
class DiscoveryResult:
    """One discovered table: who found it, how strongly, and why."""

    table_name: str
    score: float
    discoverer: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.score < 0.0:
            raise ValueError(f"negative discovery score: {self.score}")


class Discoverer(abc.ABC):
    """Base class for table-search algorithms.

    Lifecycle: construct, :meth:`fit` once against a lake (index building is
    the offline step the demo describes), then :meth:`search` any number of
    times.  Implementations must be deterministic for a fixed lake.
    """

    #: Short identifier used in results and the pipeline registry.
    name: str = "discoverer"

    #: The declared retrieval contract.  The safe default is exhaustive
    #: (score everything); sublinear discoverers override with their
    #: channels.  See :class:`~repro.candidates.CandidateSpec`.
    spec: CandidateSpec = CandidateSpec(channels=("exhaustive",))

    def __init__(self) -> None:
        self._fitted = False
        self._engine: "CandidateEngine | None" = None

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def engine(self) -> "CandidateEngine | None":
        """The candidate engine this discoverer retrieves through."""
        return self._engine

    def candidate_spec(self) -> CandidateSpec:
        """The spec ``search`` retrieves under (class default; override
        for instance-dependent contracts)."""
        return self.spec

    def fit(
        self, lake: Mapping[str, Table], engine: "CandidateEngine | None" = None
    ) -> "Discoverer":
        """Build this discoverer's index over *lake*; returns self.

        *engine* is the shared candidate engine (``LakeIndex.build``
        passes one so all discoverers retrieve from the same postings /
        sketches); a standalone fit creates a private engine whose
        channels build lazily on first search.
        """
        if engine is None:
            from ..candidates.engine import CandidateEngine

            engine = CandidateEngine(dict(lake))
        self._engine = engine
        self._build_index(dict(lake))
        self._fitted = True
        return self

    def clone_unfitted(self) -> "Discoverer":
        """An unfitted twin that keeps constructor configuration -- what
        the serving layer refits against a new lake version while this
        instance keeps serving the old one.

        The default -- a shallow copy with the fitted flag and engine
        cleared -- is correct whenever :meth:`_build_index` *assigns*
        fresh containers (every built-in does).  A discoverer whose fit
        **mutates** constructor-owned state in place (e.g. SANTOS's
        knowledge-base synthesis) must override this and copy that state,
        so a rebuild can never touch structures a still-serving twin is
        reading concurrently.
        """
        import copy

        clone = copy.copy(self)
        clone._fitted = False
        clone._engine = None
        return clone

    def bind_engine(self, engine: "CandidateEngine") -> None:
        """Attach a (new) shared engine -- what loaders call after
        unpickling, since pickles deliberately drop the engine."""
        self._engine = engine
        self._engine_bound()

    def _engine_bound(self) -> None:
        """Hook for re-publishing fit products into a freshly bound
        engine (SANTOS re-registers its label namespaces here)."""

    def _require_engine(self) -> "CandidateEngine":
        if self._engine is None:
            raise RuntimeError(
                f"discoverer {self.name!r} has no candidate engine (it was "
                f"unpickled standalone); call bind_engine(engine) or load it "
                f"through LakeIndex.load / LakeIndex.from_store"
            )
        return self._engine

    @abc.abstractmethod
    def _build_index(self, lake: Mapping[str, Table]) -> None:
        """Index construction hook (lake is a private copy)."""

    def search(
        self, query: Table, k: int = 10, query_column: str | None = None
    ) -> list[DiscoveryResult]:
        """Top-*k* lake tables related to *query*.

        *query_column* is the user's intent/join column where the algorithm
        uses one (SANTOS's intent column, LSH Ensemble / JOSIE's query
        column); algorithms that don't need it may ignore it.
        """
        if not self._fitted:
            raise RuntimeError(f"discoverer {self.name!r} used before fit()")
        if k <= 0:
            raise ValueError("k must be positive")
        with trace.span(f"discover.{self.name}", k=k):
            with trace.span("discover.candidates") as candidates_span:
                candidates = self._candidates(query, k, query_column)
                candidates_span.add(candidates=len(candidates.tables))
            with trace.span("discover.score") as score_span:
                results = self._search(query, k, query_column, candidates)
                score_span.add(results=len(results))
            results.sort(key=lambda r: (-r.score, r.table_name))
            return results[:k]

    def _candidates(
        self, query: Table, k: int, query_column: str | None
    ) -> CandidateSet:
        """Phase 1: retrieve the candidate set for this query.

        The default drives the engine's generic channels from the query's
        cached stats; discoverers whose probes need algorithm-specific
        state (annotations, signatures + thresholds, join-key maps)
        override this."""
        return self._require_engine().retrieve(
            self.name, self.candidate_spec(), query, k=k, query_column=query_column
        )

    @abc.abstractmethod
    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        """Phase 2: score *only* the retrieved candidates; may return more
        than *k* results (caller truncates)."""

    # ------------------------------------------------------------------
    # Pickling: the engine is lake-wide shared state -- serializing it
    # per discoverer would duplicate the posting structures (and, through
    # the stats they reference, the lake) into every index pickle.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_engine"] = None
        return state


def merge_result_sets(
    result_sets: Sequence[Sequence[DiscoveryResult]],
    normalize: bool = True,
) -> list[DiscoveryResult]:
    """Union the results of several discoverers (the paper's integration-set
    construction).  A table found by multiple discoverers keeps its best
    score and accumulates the discoverer names in ``reason``.

    Scores of different discoverers live on different scales (JOSIE reports
    raw overlap counts, SANTOS a [0, 1] semantic score), so by default each
    result set is max-normalized before merging -- order within a discoverer
    is preserved, and the merged ranking becomes scale-free.  Pass
    ``normalize=False`` to merge raw scores.

    Ordering is fully deterministic: results sort by (score desc,
    table name asc, discoverer asc), and when two discoverers tie on a
    table's normalized score the alphabetically first discoverer is
    credited -- so persisted integration sets are byte-reproducible
    across runs regardless of roster iteration order.

    Multi-source inputs (the sharded reducer) may present the *same*
    ``(table, discoverer)`` pair in more than one result set -- e.g. two
    shards each returning their local score for one table.  Dedup keeps
    the **max** score for the pair: a repeat at a lower or equal score
    never displaces the credited entry (strict ``>`` on score; the ``<``
    tie-break on discoverer name is a no-op for an identical name), a
    repeat at a higher score wins, and ``found_by`` accumulates
    duplicates into a set so the reason line lists each discoverer once.
    The final (score desc, table asc, discoverer asc) sort stays a total
    order either way.
    """
    best: dict[str, DiscoveryResult] = {}
    found_by: dict[str, list[str]] = {}
    for results in result_sets:
        top = max((r.score for r in results), default=0.0)
        scale = top if (normalize and top > 0) else 1.0
        for result in results:
            found_by.setdefault(result.table_name, []).append(result.discoverer)
            scored = result.score / scale
            current = best.get(result.table_name)
            if (
                current is None
                or scored > current.score
                or (scored == current.score and result.discoverer < current.discoverer)
            ):
                best[result.table_name] = DiscoveryResult(
                    table_name=result.table_name,
                    score=scored,
                    discoverer=result.discoverer,
                    reason=result.reason,
                )
    merged = []
    for table_name, result in best.items():
        names = sorted(set(found_by[table_name]))
        merged.append(
            DiscoveryResult(
                table_name=table_name,
                score=result.score,
                discoverer=result.discoverer,
                reason=f"found by: {', '.join(names)}",
            )
        )
    merged.sort(key=lambda r: (-r.score, r.table_name, r.discoverer))
    return merged
