"""The discovery API: what every table-search algorithm implements.

DIALITE is explicitly pluggable here (Sec. 3.2 / Fig. 4 of the paper): a
discoverer is anything that can be fitted to a lake (``{name: Table}``) and
answer top-k searches for a query table.  The pipeline persists the union of
the result sets of *all* configured discoverers to form the integration set
(Sec. 3.1: "we persist the set of tables found by all techniques").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..table.table import Table

__all__ = ["DiscoveryResult", "Discoverer", "merge_result_sets"]


@dataclass(frozen=True)
class DiscoveryResult:
    """One discovered table: who found it, how strongly, and why."""

    table_name: str
    score: float
    discoverer: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.score < 0.0:
            raise ValueError(f"negative discovery score: {self.score}")


class Discoverer(abc.ABC):
    """Base class for table-search algorithms.

    Lifecycle: construct, :meth:`fit` once against a lake (index building is
    the offline step the demo describes), then :meth:`search` any number of
    times.  Implementations must be deterministic for a fixed lake.
    """

    #: Short identifier used in results and the pipeline registry.
    name: str = "discoverer"

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, lake: Mapping[str, Table]) -> "Discoverer":
        """Build this discoverer's index over *lake*; returns self."""
        self._build_index(dict(lake))
        self._fitted = True
        return self

    @abc.abstractmethod
    def _build_index(self, lake: Mapping[str, Table]) -> None:
        """Index construction hook (lake is a private copy)."""

    def search(
        self, query: Table, k: int = 10, query_column: str | None = None
    ) -> list[DiscoveryResult]:
        """Top-*k* lake tables related to *query*.

        *query_column* is the user's intent/join column where the algorithm
        uses one (SANTOS's intent column, LSH Ensemble / JOSIE's query
        column); algorithms that don't need it may ignore it.
        """
        if not self._fitted:
            raise RuntimeError(f"discoverer {self.name!r} used before fit()")
        if k <= 0:
            raise ValueError("k must be positive")
        results = self._search(query, k, query_column)
        results.sort(key=lambda r: (-r.score, r.table_name))
        return results[:k]

    @abc.abstractmethod
    def _search(
        self, query: Table, k: int, query_column: str | None
    ) -> list[DiscoveryResult]:
        """Search hook; may return more than *k* results (caller truncates)."""


def merge_result_sets(
    result_sets: Sequence[Sequence[DiscoveryResult]],
    normalize: bool = True,
) -> list[DiscoveryResult]:
    """Union the results of several discoverers (the paper's integration-set
    construction).  A table found by multiple discoverers keeps its best
    score and accumulates the discoverer names in ``reason``.

    Scores of different discoverers live on different scales (JOSIE reports
    raw overlap counts, SANTOS a [0, 1] semantic score), so by default each
    result set is max-normalized before merging -- order within a discoverer
    is preserved, and the merged ranking becomes scale-free.  Pass
    ``normalize=False`` to merge raw scores.
    """
    best: dict[str, DiscoveryResult] = {}
    found_by: dict[str, list[str]] = {}
    for results in result_sets:
        top = max((r.score for r in results), default=0.0)
        scale = top if (normalize and top > 0) else 1.0
        for result in results:
            found_by.setdefault(result.table_name, []).append(result.discoverer)
            scored = result.score / scale
            current = best.get(result.table_name)
            if current is None or scored > current.score:
                best[result.table_name] = DiscoveryResult(
                    table_name=result.table_name,
                    score=scored,
                    discoverer=result.discoverer,
                    reason=result.reason,
                )
    merged = []
    for table_name, result in best.items():
        names = sorted(set(found_by[table_name]))
        merged.append(
            DiscoveryResult(
                table_name=table_name,
                score=result.score,
                discoverer=result.discoverer,
                reason=f"found by: {', '.join(names)}",
            )
        )
    merged.sort(key=lambda r: (-r.score, r.table_name))
    return merged
