"""Starmie-style embedding-based dataset discovery (Fan et al., VLDB 2023).

The paper's related work [4] discovers unionable tables with *contextualized
column representations*: each column is embedded in the context of its
table, and tables are ranked by how well their column embeddings match the
query's.  Offline we reproduce the architecture with the library's hashed
embeddings:

* every column gets a value+header embedding (:class:`ColumnEmbedder`);
* a column's *contextualized* vector mixes its own embedding with its
  table's centroid (the context signal that separates ``name`` in a movie
  table from ``name`` in a hospital table);
* a candidate table's score is the mean, over query columns, of the best
  greedy one-to-one cosine match -- the bipartite column-matching objective
  Starmie optimizes.

The pretrained-contrastive-encoder part is the substitution (see
DESIGN.md): hashed embeddings preserve "similar value distributions embed
nearby", which is what the matching objective consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..candidates.spec import CandidateSet, CandidateSpec
from ..embeddings.column import ColumnEmbedder
from ..embeddings.hashing import HashedVectorSpace
from ..table.table import Table
from .base import Discoverer, DiscoveryResult

__all__ = ["StarmieConfig", "StarmieUnionSearch"]


@dataclass(frozen=True)
class StarmieConfig:
    """Tuning knobs for :class:`StarmieUnionSearch`.

    The embedder's header weight is raised well above the aligner's default:
    hashed value embeddings of *disjoint* unionable columns (Toronto/Boston
    vs Berlin/Barcelona) are near-orthogonal, so the header/context channel
    must carry the semantic load a pretrained encoder would -- same-header
    disjoint columns land around cosine 0.25-0.3, hence the 0.2 floor.
    """

    context_weight: float = 0.25  # how much table context blends into a column
    min_column_similarity: float = 0.2
    min_table_score: float = 0.05
    header_weight: float = 0.6


class StarmieUnionSearch(Discoverer):
    """Top-k unionable table search by contextualized column embeddings."""

    name = "starmie"
    #: Honest exhaustive declaration: hashed embeddings can match columns
    #: with disjoint values through the header/context channel, so no
    #: posting or sketch signal soundly bounds the scorable set (a real
    #: deployment would add an ANN index over the column vectors).
    spec = CandidateSpec(
        channels=("exhaustive",),
        note="embedding scores have no sound sublinear retrieval signal "
        "at this fidelity; every candidate matrix is scored",
    )

    def __init__(self, config: StarmieConfig | None = None, embedder: ColumnEmbedder | None = None):
        super().__init__()
        self.config = config or StarmieConfig()
        if embedder is None:
            from ..embeddings.column import ColumnEmbedderConfig

            embedder = ColumnEmbedder(
                ColumnEmbedderConfig(header_weight=self.config.header_weight)
            )
        self._embedder = embedder
        self._table_columns: dict[str, np.ndarray] = {}
        self._table_column_names: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def _contextualize(self, vectors: list[np.ndarray]) -> np.ndarray:
        """Stack per-column vectors, blending in the table centroid."""
        matrix = np.stack(vectors)
        centroid = matrix.mean(axis=0)
        norm = np.linalg.norm(centroid)
        if norm > 0:
            centroid = centroid / norm
        mixed = (1.0 - self.config.context_weight) * matrix + self.config.context_weight * centroid
        norms = np.linalg.norm(mixed, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return mixed / norms

    def _embed_table(self, table: Table) -> tuple[np.ndarray, list[str]] | None:
        vectors = []
        names = []
        for column in table.columns:
            values = table.column_values(column)
            profile = self._embedder.profile(column, values)
            if np.linalg.norm(profile.embedding) == 0:
                continue
            vectors.append(profile.embedding)
            names.append(column)
        if not vectors:
            return None
        return self._contextualize(vectors), names

    def _build_index(self, lake: Mapping[str, Table]) -> None:
        self._table_columns = {}
        self._table_column_names = {}
        for table_name, table in lake.items():
            embedded = self._embed_table(table)
            if embedded is None:
                continue
            self._table_columns[table_name], self._table_column_names[table_name] = embedded

    # ------------------------------------------------------------------
    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        embedded = self._embed_table(query)
        if embedded is None:
            return []
        query_matrix, query_names = embedded
        results = []
        for table_name in candidates:
            candidate_matrix = self._table_columns.get(table_name)
            if candidate_matrix is None:
                continue
            score, matched = self._match_score(query_matrix, candidate_matrix)
            if score >= self.config.min_table_score:
                pairs = ", ".join(
                    f"{query_names[qi]}~{self._table_column_names[table_name][ci]}"
                    for qi, ci in matched[:3]
                )
                results.append(
                    DiscoveryResult(
                        table_name=table_name,
                        score=score,
                        discoverer=self.name,
                        reason=f"column matches: {pairs}" if pairs else "",
                    )
                )
        return results

    def _match_score(
        self, query_matrix: np.ndarray, candidate_matrix: np.ndarray
    ) -> tuple[float, list[tuple[int, int]]]:
        """Greedy one-to-one bipartite matching on cosine similarity."""
        similarity = query_matrix @ candidate_matrix.T
        pairs = [
            (float(similarity[i, j]), i, j)
            for i in range(similarity.shape[0])
            for j in range(similarity.shape[1])
        ]
        pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_query: set[int] = set()
        used_candidate: set[int] = set()
        matched: list[tuple[int, int]] = []
        total = 0.0
        for value, i, j in pairs:
            if value < self.config.min_column_similarity:
                break
            if i in used_query or j in used_candidate:
                continue
            used_query.add(i)
            used_candidate.add(j)
            matched.append((i, j))
            total += value
        return total / max(1, query_matrix.shape[0]), matched
