"""Table discovery: SANTOS union search, LSH Ensemble & JOSIE join search,
and the user-defined-similarity hook (the paper's Sec. 2.1).

All discoverers share the :class:`~repro.discovery.base.Discoverer` API:
``fit({name: Table})`` once, then ``search(query, k, query_column)``.
"""

from .base import Discoverer, DiscoveryResult, merge_result_sets
from .cocoa import CocoaConfig, CocoaJoinSearch
from .evaluation import (
    RankingReport,
    average_precision,
    evaluate_discoverer,
    evaluate_ranking,
    precision_at_k,
    recall_at_k,
)
from .custom import FunctionDiscoverer, inner_join_similarity, value_overlap_similarity
from .josie import JosieConfig, JosieJoinSearch, exact_topk_overlap
from .kb import KnowledgeBase, Relation, seed_knowledge_base
from .lshensemble import LSHEnsembleConfig, LSHEnsembleJoinSearch
from .santos import SantosConfig, SantosUnionSearch, TableAnnotation
from .starmie import StarmieConfig, StarmieUnionSearch
from .tus import TusConfig, TusUnionSearch

__all__ = [
    "Discoverer",
    "DiscoveryResult",
    "merge_result_sets",
    "KnowledgeBase",
    "Relation",
    "seed_knowledge_base",
    "SantosUnionSearch",
    "SantosConfig",
    "TableAnnotation",
    "LSHEnsembleJoinSearch",
    "LSHEnsembleConfig",
    "JosieJoinSearch",
    "JosieConfig",
    "exact_topk_overlap",
    "StarmieUnionSearch",
    "StarmieConfig",
    "TusUnionSearch",
    "TusConfig",
    "CocoaJoinSearch",
    "CocoaConfig",
    "FunctionDiscoverer",
    "inner_join_similarity",
    "value_overlap_similarity",
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "RankingReport",
    "evaluate_ranking",
    "evaluate_discoverer",
]
