"""User-defined discovery (the paper's Fig. 4 extensibility hook).

DIALITE lets a user add a discovery algorithm by "implementing a similarity
function between two datasets".  :class:`FunctionDiscoverer` wraps exactly
that: any ``f(query_table, lake_table) -> float`` becomes a full discoverer
(brute-force scan -- correctness first; users wanting indexes subclass
:class:`~repro.discovery.base.Discoverer` directly).

:func:`inner_join_similarity` reproduces the figure's example: similarity as
the relative size of the inner join between the two tables.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..candidates.spec import CandidateSet, CandidateSpec
from ..table import ops
from ..table.table import Table
from .base import Discoverer, DiscoveryResult

__all__ = ["FunctionDiscoverer", "inner_join_similarity", "value_overlap_similarity"]


class FunctionDiscoverer(Discoverer):
    """Wrap a pairwise table-similarity function as a discoverer.

    A bare similarity function declares nothing about *where* its signal
    lives, so its spec is honestly exhaustive: every candidate the engine
    hands over (the whole lake) is scored.  Users wanting sublinear
    retrieval subclass :class:`~repro.discovery.base.Discoverer` and
    declare a real :class:`~repro.candidates.CandidateSpec`.
    """

    spec = CandidateSpec(
        channels=("exhaustive",),
        note="a black-box similarity function has no declared retrieval signal",
    )

    def __init__(
        self,
        similarity: Callable[[Table, Table], float],
        name: str = "user_defined",
    ):
        super().__init__()
        self.name = name
        self._similarity = similarity
        self._lake: dict[str, Table] = {}

    def _build_index(self, lake: Mapping[str, Table]) -> None:
        self._lake = dict(lake)

    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        results = []
        for table_name in candidates:
            table = self._lake.get(table_name)
            if table is None:
                continue
            score = float(self._similarity(query, table))
            if score > 0.0:
                results.append(
                    DiscoveryResult(
                        table_name=table_name,
                        score=score,
                        discoverer=self.name,
                        reason=f"{self.name}(query, {table_name}) = {score:.3f}",
                    )
                )
        return results


def inner_join_similarity(query: Table, candidate: Table) -> float:
    """The Fig. 4 example: how large is the natural inner join, relative to
    the query?  0.0 when the tables share no columns."""
    shared = [c for c in query.columns if candidate.has_column(c)]
    if not shared or query.num_rows == 0:
        return 0.0
    joined = ops.inner_join(query, candidate, on=shared)
    return joined.num_rows / query.num_rows


def value_overlap_similarity(query: Table, candidate: Table) -> float:
    """A schema-agnostic alternative: Jaccard of the tables' distinct cell
    values (strings only), useful when headers are unreliable."""
    def values_of(table: Table) -> set[str]:
        collected: set[str] = set()
        for column in table.columns:
            collected.update(
                str(v).lower() for v in table.column_values(column) if isinstance(v, str)
            )
        return collected

    from ..text.similarity import jaccard

    query_values = values_of(query)
    candidate_values = values_of(candidate)
    if not query_values or not candidate_values:
        return 0.0
    return jaccard(query_values, candidate_values)
