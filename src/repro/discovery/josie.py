"""JOSIE-style exact top-k overlap set similarity search (SIGMOD 2019).

Where LSH Ensemble trades accuracy for speed, JOSIE answers *exact* top-k
overlap queries over an inverted index.  The reproduction keeps JOSIE's two
structural ideas at library scale:

* an **inverted index** from token to the columns containing it, with
  posting lists visited in increasing document-frequency order (rare tokens
  first, the cheapest evidence);
* **early termination**: after processing a prefix of the query's tokens,
  any candidate's final overlap is bounded by ``current + remaining``; once
  the running top-k's k-th overlap exceeds every unseen candidate's bound,
  the scan stops.

Cost-model-driven switching between index probes and candidate reads (the
full JOSIE optimizer) is out of scope at in-memory scale; exactness and the
prefix-bound pruning are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from ..table.table import Table
from .base import Discoverer, DiscoveryResult

__all__ = ["JosieConfig", "JosieJoinSearch", "exact_topk_overlap"]


@dataclass(frozen=True)
class JosieConfig:
    """Tuning knobs for :class:`JosieJoinSearch`."""

    min_domain_size: int = 2
    min_overlap: int = 1


def exact_topk_overlap(
    query_tokens: set[Hashable],
    index: Mapping[Hashable, list[str]],
    set_sizes: Mapping[str, int],
    k: int,
    min_overlap: int = 1,
) -> list[tuple[str, int]]:
    """Exact top-k sets by overlap with *query_tokens*, with early stopping.

    *index* maps token -> keys of sets containing it; *set_sizes* gives each
    set's cardinality (used only for deterministic tie-breaking).  Returns
    ``[(key, overlap)]`` sorted by overlap desc.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    ordered = sorted(
        (token for token in query_tokens if token in index),
        key=lambda token: (len(index[token]), str(token)),
    )
    counts: dict[str, int] = {}
    remaining = len(ordered)
    for position, token in enumerate(ordered):
        for key in index[token]:
            counts[key] = counts.get(key, 0) + 1
        remaining = len(ordered) - (position + 1)
        if len(counts) >= k and remaining > 0:
            # kth best current overlap; an unseen candidate can reach at
            # most `remaining`, a seen one at most counts[key] + remaining.
            top = sorted(counts.values(), reverse=True)
            kth = top[k - 1] if len(top) >= k else 0
            best_possible_new = remaining
            if kth >= best_possible_new and kth >= min_overlap:
                # Unseen candidates can no longer enter the top-k, but seen
                # ones can still reorder; finish their exact counts cheaply.
                for later_token in ordered[position + 1 :]:
                    for key in index[later_token]:
                        if key in counts:
                            counts[key] += 1
                break
    scored = [
        (key, overlap) for key, overlap in counts.items() if overlap >= min_overlap
    ]
    scored.sort(key=lambda pair: (-pair[1], set_sizes.get(pair[0], 0), pair[0]))
    return scored[:k]


class JosieJoinSearch(Discoverer):
    """Exact top-k joinable table search by token overlap."""

    name = "josie"

    def __init__(self, config: JosieConfig | None = None):
        super().__init__()
        self.config = config or JosieConfig()
        self._index: dict[Hashable, list[str]] = {}
        self._sizes: dict[str, int] = {}
        self._column_of_key: dict[str, tuple[str, str]] = {}

    def _build_index(self, lake: Mapping[str, Table]) -> None:
        self._index = {}
        self._sizes = {}
        self._column_of_key = {}
        for table_name, table in lake.items():
            for column in table.columns:
                # The domain token set comes from the shared column-stats
                # cache; other discoverers reading the same column reuse it.
                tokens = table.stats.column(column).tokens
                if len(tokens) < self.config.min_domain_size:
                    continue
                key = f"{table_name}\x1f{column}"
                self._column_of_key[key] = (table_name, column)
                self._sizes[key] = len(tokens)
                for token in tokens:
                    self._index.setdefault(token, []).append(key)

    def _search(
        self, query: Table, k: int, query_column: str | None
    ) -> list[DiscoveryResult]:
        probe_columns = (
            [query_column] if query_column in query.columns else list(query.columns)
        )
        best_per_table: dict[str, tuple[int, str, str]] = {}
        for column in probe_columns:
            tokens = query.stats.column(column).tokens
            if len(tokens) < self.config.min_domain_size:
                continue
            # Ask for generously more than k column hits: several top
            # columns may belong to the same table.
            hits = exact_topk_overlap(
                tokens, self._index, self._sizes, k * 4, self.config.min_overlap
            )
            for key, overlap in hits:
                table_name, lake_column = self._column_of_key[key]
                current = best_per_table.get(table_name)
                if current is None or overlap > current[0]:
                    best_per_table[table_name] = (overlap, column, lake_column)
        results = []
        for table_name, (overlap, query_col, lake_col) in best_per_table.items():
            results.append(
                DiscoveryResult(
                    table_name=table_name,
                    score=float(overlap),
                    discoverer=self.name,
                    reason=f"|{query_col} ∩ {table_name}.{lake_col}| = {overlap}",
                )
            )
        return results


def build_token_postings(
    columns: Iterable[tuple[str, set[Hashable]]],
) -> tuple[dict[Hashable, list[str]], dict[str, int]]:
    """Standalone helper to build (inverted index, sizes) from labeled sets;
    exposed for tests and for users composing their own exact search."""
    index: dict[Hashable, list[str]] = {}
    sizes: dict[str, int] = {}
    for key, tokens in columns:
        sizes[key] = len(tokens)
        for token in tokens:
            index.setdefault(token, []).append(key)
    return index, sizes
