"""JOSIE-style exact top-k overlap set similarity search (SIGMOD 2019).

Where LSH Ensemble trades accuracy for speed, JOSIE answers *exact* top-k
overlap queries over an inverted index.  The reproduction keeps JOSIE's
structural idea at library scale: retrieval walks the posting lists of the
query's tokens, and the per-column hit counts that walk accumulates *are*
the exact overlaps -- retrieve-then-rerank with a shared index instead of
a per-discoverer one.

The posting index itself lives in the lake-wide
:class:`~repro.candidates.CandidateEngine` (every discoverer on the
``tokens`` channel shares it); this class contributes only its scoring
policy: domain-size and overlap floors, best-column-per-table
aggregation, exact integer scores.  Retrieval is provably a superset of
scoring -- any column with overlap >= 1 shares a token with the query,
so engine-backed search returns *identical* top-k to the exhaustive scan
(pinned by ``tests/property/test_candidate_equivalence.py``).

Cost-model-driven switching between index probes and candidate reads (the
full JOSIE optimizer) is out of scope at in-memory scale; exactness is
preserved.  :func:`exact_topk_overlap` remains as the standalone
early-terminating algorithm for users composing their own search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from ..candidates.spec import CandidateSet, CandidateSpec
from ..table.table import Table
from .base import Discoverer, DiscoveryResult

__all__ = ["JosieConfig", "JosieJoinSearch", "exact_topk_overlap"]


@dataclass(frozen=True)
class JosieConfig:
    """Tuning knobs for :class:`JosieJoinSearch`."""

    min_domain_size: int = 2
    min_overlap: int = 1


def exact_topk_overlap(
    query_tokens: set[Hashable],
    index: Mapping[Hashable, list[str]],
    set_sizes: Mapping[str, int],
    k: int,
    min_overlap: int = 1,
) -> list[tuple[str, int]]:
    """Exact top-k sets by overlap with *query_tokens*, with early stopping.

    *index* maps token -> keys of sets containing it; *set_sizes* gives each
    set's cardinality (used only for deterministic tie-breaking).  Returns
    ``[(key, overlap)]`` sorted by overlap desc.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    ordered = sorted(
        (token for token in query_tokens if token in index),
        key=lambda token: (len(index[token]), str(token)),
    )
    counts: dict[str, int] = {}
    remaining = len(ordered)
    for position, token in enumerate(ordered):
        for key in index[token]:
            counts[key] = counts.get(key, 0) + 1
        remaining = len(ordered) - (position + 1)
        if len(counts) >= k and remaining > 0:
            # kth best current overlap; an unseen candidate can reach at
            # most `remaining`, a seen one at most counts[key] + remaining.
            top = sorted(counts.values(), reverse=True)
            kth = top[k - 1] if len(top) >= k else 0
            best_possible_new = remaining
            if kth >= best_possible_new and kth >= min_overlap:
                # Unseen candidates can no longer enter the top-k, but seen
                # ones can still reorder; finish their exact counts cheaply.
                for later_token in ordered[position + 1 :]:
                    for key in index[later_token]:
                        if key in counts:
                            counts[key] += 1
                break
    scored = [
        (key, overlap) for key, overlap in counts.items() if overlap >= min_overlap
    ]
    scored.sort(key=lambda pair: (-pair[1], set_sizes.get(pair[0], 0), pair[0]))
    return scored[:k]


class JosieJoinSearch(Discoverer):
    """Exact top-k joinable table search by token overlap."""

    name = "josie"
    spec = CandidateSpec(
        channels=("tokens",),
        note="sound: overlap >= 1 implies a shared token, so the posting "
        "probe retrieves a superset of every scorable table",
    )

    def __init__(self, config: JosieConfig | None = None):
        super().__init__()
        self.config = config or JosieConfig()

    def _build_index(self, lake: Mapping[str, Table]) -> None:
        # The inverted token postings are the shared engine's; JOSIE's
        # offline step is making sure they exist before queries arrive.
        self._require_engine().warm(("tokens",))

    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        engine = self._require_engine()
        probe_columns = (
            [query_column] if query_column in query.columns else list(query.columns)
        )
        allowed = candidates.table_set
        best_per_table: dict[str, tuple[int, str, str]] = {}
        for column in probe_columns:
            tokens = query.stats.column(column).tokens
            if len(tokens) < self.config.min_domain_size:
                continue
            if candidates.evidence is not None:
                # The posting probe's per-column hit counts are the exact
                # overlaps -- retrieval already scored this channel.
                hits = candidates.evidence_for(f"tokens:{column}")
            else:
                hits = engine.overlap_scan(tokens, candidates.tables)
            scored = [
                (key, int(overlap))
                for key, overlap in hits.items()
                if overlap >= self.config.min_overlap
                and engine.column_token_size(key) >= self.config.min_domain_size
            ]
            # Deterministic aggregation order: overlap desc, then smaller
            # domains first, then owner -- ties resolve identically on the
            # engine-backed and exhaustive paths.
            scored.sort(
                key=lambda pair: (
                    -pair[1],
                    engine.column_token_size(pair[0]),
                    engine.column_owner(pair[0]),
                )
            )
            for key, overlap in scored:
                table_name, lake_column = engine.column_owner(key)
                if table_name not in allowed:
                    continue
                current = best_per_table.get(table_name)
                if current is None or overlap > current[0]:
                    best_per_table[table_name] = (overlap, column, lake_column)
        results = []
        for table_name, (overlap, query_col, lake_col) in best_per_table.items():
            results.append(
                DiscoveryResult(
                    table_name=table_name,
                    score=float(overlap),
                    discoverer=self.name,
                    reason=f"|{query_col} ∩ {table_name}.{lake_col}| = {overlap}",
                )
            )
        return results


def build_token_postings(
    columns: Iterable[tuple[str, set[Hashable]]],
) -> tuple[dict[Hashable, list[str]], dict[str, int]]:
    """Standalone helper to build (inverted index, sizes) from labeled sets;
    exposed for tests and for users composing their own exact search."""
    index: dict[Hashable, list[str]] = {}
    sizes: dict[str, int] = {}
    for key, tokens in columns:
        sizes[key] = len(tokens)
        for token in tokens:
            index.setdefault(token, []).append(key)
    return index, sizes
