"""Joinable-table search backed by LSH Ensemble (Zhu et al., VLDB 2016).

Every lake column's domain token set is indexed in a
:class:`repro.sketch.LSHEnsemble`; a query asks: which lake tables have a
column whose domain *contains* (a large fraction of) the query column's
domain?  High containment means the lake column can serve as a join key
against the query column -- the paper's joinable search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..sketch.ensemble import LSHEnsemble
from ..table.table import Table
from .base import Discoverer, DiscoveryResult

__all__ = ["LSHEnsembleConfig", "LSHEnsembleJoinSearch"]


@dataclass(frozen=True)
class LSHEnsembleConfig:
    """Tuning knobs for :class:`LSHEnsembleJoinSearch`.

    The default containment threshold is deliberately recall-oriented
    (0.35): DIALITE unions all discoverers' result sets into the
    integration set (Sec. 3.1), so a borderline joinable table is cheap to
    keep and expensive to miss, and the MinHash containment estimate
    carries ~1/sqrt(num_perm) noise around real-world ~0.5 overlaps.
    """

    num_perm: int = 128
    num_partitions: int = 8
    threshold: float = 0.35
    seed: int = 1
    min_domain_size: int = 2  # single-token columns are join noise


class LSHEnsembleJoinSearch(Discoverer):
    """Top-k joinable table search by estimated domain containment."""

    name = "lsh_ensemble"

    def __init__(self, config: LSHEnsembleConfig | None = None):
        super().__init__()
        self.config = config or LSHEnsembleConfig()
        self._ensemble: LSHEnsemble | None = None
        self._column_of_key: dict[str, tuple[str, str]] = {}

    def _build_index(self, lake: Mapping[str, Table]) -> None:
        self._ensemble = LSHEnsemble(
            num_perm=self.config.num_perm,
            num_partitions=self.config.num_partitions,
            seed=self.config.seed,
        )
        hasher = self._ensemble.hasher
        entries = []
        for table_name, table in lake.items():
            for column in table.columns:
                # Token sets and MinHash signatures come from the shared
                # column-stats cache, keyed by the ensemble's (perm, seed).
                stats = table.stats.column(column)
                if len(stats.tokens) < self.config.min_domain_size:
                    continue
                key = f"{table_name}\x1f{column}"
                self._column_of_key[key] = (table_name, column)
                entries.append((key, stats.minhash(hasher)))
        self._ensemble.index_signatures(entries)

    def _search(
        self, query: Table, k: int, query_column: str | None
    ) -> list[DiscoveryResult]:
        assert self._ensemble is not None
        if query_column is None:
            # Without a marked query column, probe every query column and
            # keep each table's best containment (the demo UI always marks
            # one, but the API shouldn't force it).
            probe_columns = list(query.columns)
        else:
            query.column_index(query_column)  # validate early
            probe_columns = [query_column]

        best_per_table: dict[str, tuple[float, str, str]] = {}
        for column in probe_columns:
            stats = query.stats.column(column)
            if len(stats.tokens) < self.config.min_domain_size:
                continue
            matches = self._ensemble.query(
                stats.minhash(self._ensemble.hasher),
                threshold=self.config.threshold,
                k=None,
            )
            for match in matches:
                table_name, lake_column = self._column_of_key[str(match.key)]
                current = best_per_table.get(table_name)
                if current is None or match.containment > current[0]:
                    best_per_table[table_name] = (match.containment, column, lake_column)

        results = []
        for table_name, (containment, query_col, lake_col) in best_per_table.items():
            results.append(
                DiscoveryResult(
                    table_name=table_name,
                    score=containment,
                    discoverer=self.name,
                    reason=f"containment({query_col} ⊑ {table_name}.{lake_col}) ≈ {containment:.2f}",
                )
            )
        return results
