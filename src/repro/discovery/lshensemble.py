"""Joinable-table search backed by LSH Ensemble (Zhu et al., VLDB 2016).

Every lake column's domain token set is indexed in a banded MinHash
structure; a query asks: which lake tables have a column whose domain
*contains* (a large fraction of) the query column's domain?  High
containment means the lake column can serve as a join key against the
query column -- the paper's joinable search.

The banded sketch index lives in the shared
:class:`~repro.candidates.CandidateEngine` (memoized per parameter set,
over the same cached MinHash signatures every other consumer reads), so
this class contributes its retrieval parameters and scoring policy only.
LSH retrieval is inherently lossy: the exhaustive path (verify every
column's signature) is a *superset* of the banded one with identical
containment estimates -- the equivalence property test asserts exactly
that containment relation, not byte equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..candidates.spec import CandidateSet, CandidateSpec
from ..table.table import Table
from .base import Discoverer, DiscoveryResult

__all__ = ["LSHEnsembleConfig", "LSHEnsembleJoinSearch"]


@dataclass(frozen=True)
class LSHEnsembleConfig:
    """Tuning knobs for :class:`LSHEnsembleJoinSearch`.

    The default containment threshold is deliberately recall-oriented
    (0.35): DIALITE unions all discoverers' result sets into the
    integration set (Sec. 3.1), so a borderline joinable table is cheap to
    keep and expensive to miss, and the MinHash containment estimate
    carries ~1/sqrt(num_perm) noise around real-world ~0.5 overlaps.
    """

    num_perm: int = 128
    num_partitions: int = 8
    threshold: float = 0.35
    seed: int = 1
    min_domain_size: int = 2  # single-token columns are join noise


class LSHEnsembleJoinSearch(Discoverer):
    """Top-k joinable table search by estimated domain containment."""

    name = "lsh_ensemble"
    spec = CandidateSpec(
        channels=("sketch",),
        note="approximate: banded LSH retrieval can miss near-threshold "
        "containments; the exhaustive scan is a recall-improving superset",
    )

    def __init__(self, config: LSHEnsembleConfig | None = None):
        super().__init__()
        self.config = config or LSHEnsembleConfig()

    def _ensemble_params(self) -> dict[str, Any]:
        return {
            "num_perm": self.config.num_perm,
            "num_partitions": self.config.num_partitions,
            "seed": self.config.seed,
            "min_size": self.config.min_domain_size,
        }

    def _build_index(self, lake: Mapping[str, Table]) -> None:
        # Materialize the shared banded index now: band insertion is the
        # offline step, queries only probe.
        self._require_engine().ensemble_for(**self._ensemble_params())

    # ------------------------------------------------------------------
    def _probe_columns(self, query: Table, query_column: str | None) -> list[str]:
        if query_column is None:
            # Without a marked query column, probe every query column and
            # keep each table's best containment (the demo UI always marks
            # one, but the API shouldn't force it).
            return list(query.columns)
        query.column_index(query_column)  # validate early
        return [query_column]

    def _candidates(
        self, query: Table, k: int, query_column: str | None
    ) -> CandidateSet:
        engine = self._require_engine()
        probe_columns = self._probe_columns(query, query_column)
        if engine.force_exhaustive:
            candidates = engine.all_candidates(self.name, self.candidate_spec())
            candidates.context["probe_columns"] = probe_columns
            return candidates
        hasher = engine.hasher_for(self.config.num_perm, self.config.seed)
        evidence: dict[str, dict[int, float]] = {}
        probes = 0
        for column in probe_columns:
            stats = query.stats.column(column)
            if len(stats.tokens) < self.config.min_domain_size:
                continue
            probes += 1
            evidence[f"sketch:{column}"] = engine.sketch_probe(
                stats.minhash(hasher),
                self.config.threshold,
                **self._ensemble_params(),
            )
        candidates = engine.assemble(
            self.name, self.candidate_spec(), evidence, k, probes=probes
        )
        candidates.context["probe_columns"] = probe_columns
        return candidates

    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        engine = self._require_engine()
        probe_columns = candidates.context.get(
            "probe_columns"
        ) or self._probe_columns(query, query_column)
        hasher = engine.hasher_for(self.config.num_perm, self.config.seed)
        allowed = candidates.table_set
        best_per_table: dict[str, tuple[float, str, str]] = {}
        for column in probe_columns:
            stats = query.stats.column(column)
            if len(stats.tokens) < self.config.min_domain_size:
                continue
            if candidates.evidence is not None:
                matches = candidates.evidence_for(f"sketch:{column}")
            else:
                matches = engine.containment_scan(
                    stats.minhash(hasher),
                    self.config.threshold,
                    hasher,
                    self.config.min_domain_size,
                    candidates.tables,
                )
            for key, containment in sorted(
                matches.items(),
                key=lambda kv: (-kv[1], engine.column_owner(kv[0])),
            ):
                table_name, lake_column = engine.column_owner(key)
                if table_name not in allowed:
                    continue
                current = best_per_table.get(table_name)
                if current is None or containment > current[0]:
                    best_per_table[table_name] = (containment, column, lake_column)

        results = []
        for table_name, (containment, query_col, lake_col) in best_per_table.items():
            results.append(
                DiscoveryResult(
                    table_name=table_name,
                    score=containment,
                    discoverer=self.name,
                    reason=f"containment({query_col} ⊑ {table_name}.{lake_col}) ≈ {containment:.2f}",
                )
            )
        return results
