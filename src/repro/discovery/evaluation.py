"""Discovery evaluation: ranking metrics against ground truth.

Formalizes what the quality benchmarks measure: precision@k, recall@k,
average precision, and a one-call harness that fits a discoverer on a
labeled lake (e.g. a :class:`~repro.datalake.synth.SyntheticLake`) and
reports the metrics at several cutoffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..table.table import Table
from .base import Discoverer

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "RankingReport",
    "evaluate_ranking",
    "evaluate_discoverer",
]


def precision_at_k(ranked: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of the top-k that is relevant (1.0 for an empty top-k)."""
    if k <= 0:
        raise ValueError("k must be positive")
    top = ranked[:k]
    if not top:
        return 1.0
    relevant_set = set(relevant)
    return sum(1 for name in top if name in relevant_set) / len(top)


def recall_at_k(ranked: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of the relevant set found in the top-k (1.0 if none exist)."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = set(relevant)
    if not relevant_set:
        return 1.0
    return sum(1 for name in ranked[:k] if name in relevant_set) / len(relevant_set)


def average_precision(ranked: Sequence[str], relevant: Iterable[str]) -> float:
    """Mean of precision@rank over the ranks of relevant items (AP).

    The standard single-number ranking summary: 1.0 iff every relevant item
    is ranked above every irrelevant one.
    """
    relevant_set = set(relevant)
    if not relevant_set:
        return 1.0
    hits = 0
    total = 0.0
    for rank, name in enumerate(ranked, start=1):
        if name in relevant_set:
            hits += 1
            total += hits / rank
    return total / len(relevant_set)


@dataclass(frozen=True)
class RankingReport:
    """Metrics of one ranking against one relevance set."""

    discoverer: str
    average_precision: float
    precision: dict[int, float]
    recall: dict[int, float]

    def to_table(self) -> Table:
        """The metrics as a printable table (one row per cutoff k)."""
        rows = [
            (self.discoverer, k, round(self.precision[k], 4), round(self.recall[k], 4))
            for k in sorted(self.precision)
        ]
        return Table(["discoverer", "k", "precision", "recall"], rows, name="ranking")


def evaluate_ranking(
    ranked: Sequence[str],
    relevant: Iterable[str],
    ks: Sequence[int] = (1, 5, 10),
    name: str = "ranking",
) -> RankingReport:
    """Score an already-computed ranking."""
    relevant_list = list(relevant)
    return RankingReport(
        discoverer=name,
        average_precision=average_precision(ranked, relevant_list),
        precision={k: precision_at_k(ranked, relevant_list, k) for k in ks},
        recall={k: recall_at_k(ranked, relevant_list, k) for k in ks},
    )


def evaluate_discoverer(
    discoverer: Discoverer,
    lake: Mapping[str, Table],
    query: Table,
    relevant: Iterable[str],
    ks: Sequence[int] = (1, 5, 10),
    query_column: str | None = None,
) -> RankingReport:
    """Fit (if needed), search with the largest cutoff, and score."""
    if not discoverer.is_fitted:
        discoverer.fit(lake)
    results = discoverer.search(query, k=max(ks), query_column=query_column)
    ranked = [r.table_name for r in results]
    return evaluate_ranking(ranked, relevant, ks=ks, name=discoverer.name)
