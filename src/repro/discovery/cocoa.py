"""COCOA-style correlation-aware join discovery (Esmailoghli et al., EDBT 2021).

Reference [3] of the paper's related work: COCOA finds tables that are
joinable with the query *and* whose numeric attributes correlate with a
target column of the query -- the data-augmentation flavor of discovery
(new features for an ML model, not just new rows).

Reproduction: candidates come from the shared engine's normalized-value
posting index probed with the query's join keys (exact overlap, as
COCOA's inverted index does -- the per-column hit counts *are* the key
overlaps), then each candidate's numeric columns are scored by |Spearman
correlation| against the query's target column over the actually-joined
rows, weighted by join coverage.  COCOA's contribution of computing rank
correlations *index-only* (without materializing the join) is replaced
by an explicit merge-on-key -- same ranking, simpler machinery, fine at
in-memory scale (the substitution is recorded in DESIGN.md).  Retrieval
is sound: a scorable candidate needs key overlap >= min_key_overlap >= 1,
so the value probe is a superset of everything the scorer can rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..candidates.spec import CandidateSet, CandidateSpec
from ..table.table import Table
from ..table.values import is_null
from ..text.normalize import to_float
from ..text.tokenize import normalize_token
from .base import Discoverer, DiscoveryResult

__all__ = ["CocoaConfig", "CocoaJoinSearch"]


@dataclass(frozen=True)
class CocoaConfig:
    """Tuning knobs for :class:`CocoaJoinSearch`."""

    min_key_overlap: int = 3
    min_correlation_pairs: int = 3
    coverage_weight: float = 0.3  # blend of coverage into the final score


class CocoaJoinSearch(Discoverer):
    """Top-k joinable tables ranked by correlated numeric attributes.

    ``search`` needs the join key as *query_column* and picks the target
    numeric column automatically (first mostly-numeric query column) unless
    one was set at construction.
    """

    name = "cocoa"
    spec = CandidateSpec(
        channels=("values",),
        note="sound: scoring requires key overlap >= min_key_overlap, and "
        "every shared key appears in the value postings",
    )

    def __init__(self, target_column: str | None = None, config: CocoaConfig | None = None):
        super().__init__()
        self.target_column = target_column
        self.config = config or CocoaConfig()
        self._lake: dict[str, Table] = {}

    # ------------------------------------------------------------------
    def _build_index(self, lake: Mapping[str, Table]) -> None:
        self._lake = dict(lake)
        # Fitting binds a lake, so a clone born through __getstate__
        # (copy.copy consults it too) stops needing a rebind here.
        self._needs_rebind = False
        # The join-key inverted index is the engine's normalized-value
        # posting channel, shared with TUS's pruning; build it offline.
        self._require_engine().warm(("values",))

    # ------------------------------------------------------------------
    # Pickling: COCOA scores correlations against raw lake cells, so it
    # retains the lake mapping -- but serializing it would duplicate every
    # cell of the lake into this index's pickle (and again into memory on
    # load).  The lake is dropped from the pickle and re-attached by the
    # loader (LakeIndex.load / LakeIndex.from_store call rebind_lake).
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_lake"] = {}
        # Explicit marker: an *empty* lake mapping is legitimate (a fitted
        # index over an empty shard), so "needs rebinding" cannot be
        # inferred from emptiness alone.
        state["_needs_rebind"] = True
        return state

    def rebind_lake(self, lake: Mapping[str, Table]) -> None:
        """Re-attach the (unpickled) index to its lake's tables.

        Any mapping works and is held by reference without copying, so a
        lazily materializing :class:`~repro.store.StoredDataLake` stays
        lazy: search touches only candidate tables' cells.  When no
        shared engine was bound yet, a private one over *lake* is created
        (its value postings rebuild lazily on first search).
        """
        self._lake = lake
        self._needs_rebind = False
        if self._engine is None:
            from ..candidates.engine import CandidateEngine

            self._engine = CandidateEngine(lake)

    # ------------------------------------------------------------------
    def _pick_target(self, query: Table, join_column: str) -> str | None:
        if self.target_column is not None and query.has_column(self.target_column):
            return self.target_column
        for column in query.columns:
            if column == join_column:
                continue
            values = query.column_values(column)
            numeric = sum(1 for v in values if to_float(v) is not None)
            if values and numeric / len(values) >= 0.8:
                return column
        return None

    def _candidates(
        self, query: Table, k: int, query_column: str | None
    ) -> CandidateSet:
        """Build the query's key -> target-value map once, probe the value
        postings with its keys, and stash the map for the scoring phase."""
        if self._fitted and getattr(self, "_needs_rebind", False):
            raise RuntimeError(
                "cocoa index was unpickled without its lake; call "
                "rebind_lake(lake) before searching"
            )
        engine = self._require_engine()
        spec = self.candidate_spec()
        join_column = query_column if query_column in query.columns else query.columns[0]
        target = self._pick_target(query, join_column)
        if target is None:
            candidates = engine.empty_candidates(self.name, spec)
            candidates.context["target"] = None
            return candidates

        # key -> target value map of the query (first occurrence wins).
        key_array = query.column_array(join_column)
        target_array = query.column_array(target)
        query_map: dict[str, float] = {}
        for key_cell, target_cell in zip(key_array, target_array):
            if is_null(key_cell) or not isinstance(key_cell, str):
                continue
            number = to_float(target_cell)
            if number is None:
                continue
            query_map.setdefault(normalize_token(key_cell), number)

        if len(query_map) < self.config.min_correlation_pairs:
            candidates = engine.empty_candidates(self.name, spec)
        elif engine.force_exhaustive:
            candidates = engine.all_candidates(self.name, spec)
        else:
            evidence = {
                f"values:{join_column}": engine.value_postings.probe(query_map)
            }
            candidates = engine.assemble(self.name, spec, evidence, k, probes=1)
        candidates.context.update(
            {"join_column": join_column, "target": target, "query_map": query_map}
        )
        return candidates

    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        target = candidates.context.get("target")
        query_map: dict[str, float] = candidates.context.get("query_map", {})
        if target is None or len(query_map) < self.config.min_correlation_pairs:
            return []
        engine = self._require_engine()
        join_column = candidates.context["join_column"]
        if candidates.evidence is not None:
            # The value-posting probe counts are the exact key overlaps.
            hits = candidates.evidence_for(f"values:{join_column}")
        else:
            hits = engine.value_overlap_scan(query_map, candidates.tables)
        allowed = candidates.table_set

        results: dict[str, DiscoveryResult] = {}
        for key, overlap in sorted(
            hits.items(), key=lambda kv: (-kv[1], engine.column_owner(kv[0]))
        ):
            if overlap < self.config.min_key_overlap:
                continue
            table_name, key_col = engine.column_owner(key)
            if table_name not in allowed:
                continue
            table = self._lake[table_name]
            best = self._best_correlated_column(table, key_col, query_map)
            if best is None:
                continue
            feature_column, correlation, pairs = best
            coverage = overlap / len(query_map)
            score = (
                (1.0 - self.config.coverage_weight) * correlation
                + self.config.coverage_weight * coverage
            )
            current = results.get(table_name)
            if current is None or score > current.score:
                results[table_name] = DiscoveryResult(
                    table_name=table_name,
                    score=score,
                    discoverer=self.name,
                    reason=(
                        f"|spearman({feature_column}, {join_column}->{key_col})|"
                        f" = {correlation:.2f} over {pairs} joined rows"
                    ),
                )
        return list(results.values())

    def _best_correlated_column(
        self, table: Table, key_col: str, query_map: Mapping[str, float]
    ) -> tuple[str, float, int] | None:
        from ..analysis.correlation import spearman

        key_array = table.column_array(key_col)
        # Resolve each key row against the query once, shared by every
        # candidate feature column of this table.
        key_values: list[float | None] = [
            query_map.get(normalize_token(cell))
            if isinstance(cell, str) and not is_null(cell)
            else None
            for cell in key_array
        ]
        best: tuple[str, float, int] | None = None
        for column in table.columns:
            if column == key_col:
                continue
            xs: list[float] = []
            ys: list[float] = []
            for query_value, cell in zip(key_values, table.column_array(column)):
                if query_value is None:
                    continue
                number = to_float(cell)
                if number is None:
                    continue
                xs.append(query_value)
                ys.append(number)
            if len(xs) < self.config.min_correlation_pairs:
                continue
            correlation = abs(spearman(xs, ys))
            if best is None or correlation > best[1]:
                best = (column, correlation, len(xs))
        return best
