"""TUS-style table union search (Nargesian et al., VLDB 2018).

Reference [9] of the paper: the original "table union search on open data".
TUS scores *attribute unionability* by an ensemble of measures over the
columns' value sets, then defines table unionability as the best one-to-one
alignment of the query's columns.  The offline reproduction keeps that
two-level structure:

* attribute unionability = max of value-set Jaccard (set measure), weighted
  containment under corpus IDF (damps ubiquitous tokens -- TUS's natural-
  language ensemble plays this role), and KB type agreement (TUS's ontology
  measure), gated on numeric/text compatibility;
* table unionability = greedy one-to-one alignment score averaged over the
  query's columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..candidates.spec import CandidateSet, CandidateSpec
from ..discovery.kb import KnowledgeBase, seed_knowledge_base
from ..table.table import Table
from ..text.normalize import numeric_fraction
from ..text.similarity import jaccard, weighted_jaccard
from ..text.tfidf import TfIdfWeights
from .base import Discoverer, DiscoveryResult

__all__ = ["TusConfig", "TusUnionSearch"]


@dataclass(frozen=True)
class TusConfig:
    """Tuning knobs for :class:`TusUnionSearch`."""

    min_attribute_score: float = 0.15
    min_table_score: float = 0.1
    max_values: int = 300


@dataclass
class _ColumnSummary:
    name: str
    values: frozenset[str]
    types: dict[str, float]
    numeric_fraction: float


class TusUnionSearch(Discoverer):
    """Top-k unionable table search by ensemble attribute unionability."""

    name = "tus"
    spec = CandidateSpec(
        channels=("values",),
        intent_only=False,
        min_candidates_is_k=True,
        note="value-overlap pruning with an exhaustive fallback below k "
        "candidates, so type-only matches (disjoint values) still surface",
    )

    def __init__(self, config: TusConfig | None = None, kb: KnowledgeBase | None = None):
        super().__init__()
        self.config = config or TusConfig()
        self._kb = kb if kb is not None else seed_knowledge_base()
        self._tables: dict[str, list[_ColumnSummary]] = {}
        self._idf = TfIdfWeights()

    # ------------------------------------------------------------------
    def _summarize(self, table: Table) -> list[_ColumnSummary]:
        summaries = []
        max_values = self.config.max_values
        for column in table.columns:
            stats = table.stats.column(column)
            truncated = len(stats.values) > max_values
            sample = stats.values[:max_values] if truncated else stats.values
            # Normalized text values come from the shared stats cache (the
            # same sets the aligner consumes); a bound sample is memoized
            # under its limit.
            values = stats.text_values(max_values)
            types: dict[str, float] = {}
            distinct = list(dict.fromkeys(str(v) for v in sample))
            for value in distinct:
                for type_name in self._kb.types_of(value):
                    types[type_name] = types.get(type_name, 0.0) + 1.0
            for type_name in types:
                types[type_name] /= max(1, len(distinct))
            summaries.append(
                _ColumnSummary(
                    name=column,
                    values=values,
                    types=types,
                    numeric_fraction=(
                        numeric_fraction(list(sample))
                        if truncated
                        else stats.numeric_fraction
                    ),
                )
            )
        return summaries

    def adopt_corpus_idf(self, idf: TfIdfWeights) -> None:
        """Pin the corpus IDF to an externally accumulated one (the
        sharded build path: document frequencies accumulated over the
        *combined* lake, shared by every shard's fit, so a shard scores
        with the same ubiquity damping as the single-store pipeline).
        ``_build_index`` keeps a pinned IDF instead of re-accumulating
        shard-local frequencies."""
        self._idf = idf
        self._idf_pinned = True

    def _build_index(self, lake: Mapping[str, Table]) -> None:
        self._tables = {}
        pinned = getattr(self, "_idf_pinned", False)
        if not pinned:
            self._idf = TfIdfWeights()
        for table_name, table in lake.items():
            summaries = self._summarize(table)
            self._tables[table_name] = summaries
            if pinned:
                continue
            for summary in summaries:
                self._idf.add_document(summary.values)
        # Candidate pruning by shared values runs on the engine's
        # normalized-value postings; make sure they exist offline.
        self._require_engine().warm(("values",))

    # ------------------------------------------------------------------
    def _attribute_unionability(self, a: _ColumnSummary, b: _ColumnSummary) -> float:
        # Numeric columns never union with text columns.
        if (a.numeric_fraction > 0.8) != (b.numeric_fraction > 0.8):
            return 0.0
        scores = [jaccard(a.values, b.values) if a.values and b.values else 0.0]
        if a.values and b.values:
            scores.append(
                self._idf.weighted_containment(a.values, b.values) * 0.8
            )
        if a.types and b.types:
            scores.append(weighted_jaccard(a.types, b.types))
        if a.numeric_fraction > 0.8 and b.numeric_fraction > 0.8:
            # Numeric attributes: unionability from distribution shape is out
            # of scope; same-kind numerics get a weak prior so rate columns
            # can align when everything else agrees.
            scores.append(0.3)
        return max(scores)

    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        """Score the retrieved candidates only.  The spec's value channel
        prunes to tables sharing a normalized value with the query, and
        its ``min_candidates_is_k`` floor falls back to the whole lake
        when pruning leaves fewer than *k* tables -- type-only matches
        (disjoint values) still need consideration."""
        query_summaries = self._summarize(query)
        results = []
        for table_name in candidates:
            summaries = self._tables.get(table_name)
            if summaries is None:
                continue
            score, aligned = self._table_unionability(query_summaries, summaries)
            if score >= self.config.min_table_score:
                pairs = ", ".join(f"{qa}~{ca}" for qa, ca in aligned[:3])
                results.append(
                    DiscoveryResult(
                        table_name=table_name,
                        score=score,
                        discoverer=self.name,
                        reason=f"aligned: {pairs}" if pairs else "",
                    )
                )
        return results

    def _table_unionability(
        self, query_summaries: list[_ColumnSummary], candidate: list[_ColumnSummary]
    ) -> tuple[float, list[tuple[str, str]]]:
        """Greedy one-to-one column alignment, averaged over query columns."""
        scored = []
        for i, query_summary in enumerate(query_summaries):
            for j, candidate_summary in enumerate(candidate):
                value = self._attribute_unionability(query_summary, candidate_summary)
                if value >= self.config.min_attribute_score:
                    scored.append((value, i, j))
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_query: set[int] = set()
        used_candidate: set[int] = set()
        aligned: list[tuple[str, str]] = []
        total = 0.0
        for value, i, j in scored:
            if i in used_query or j in used_candidate:
                continue
            used_query.add(i)
            used_candidate.add(j)
            aligned.append((query_summaries[i].name, candidate[j].name))
            total += value
        return total / max(1, len(query_summaries)), aligned
