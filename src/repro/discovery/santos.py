"""SANTOS-style relationship-based semantic union search.

Reproduces the architecture of SANTOS (Khatiwada et al., SIGMOD 2023):

1. **Column annotation** -- every column is annotated with semantic types by
   looking its distinct values up in a knowledge base (seed ontology plus a
   KB synthesized from the lake itself); each type carries a confidence
   (fraction of annotatable values supporting it).
2. **Relationship annotation** -- every column *pair* whose types the KB
   relates is annotated with the relation labels, weighted by the pair's
   type confidences and row co-occurrence.
3. **Scoring** -- a lake table is unionable with the query to the extent it
   covers the query's relationships involving the *intent column* (plus the
   intent column's own types).  Tables that only share stray values score
   near zero; tables expressing the same relationships score high.

The KB channels are where the offline substitution lives (see
:mod:`repro.discovery.kb`); the annotation and scoring machinery follows the
original design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..candidates.spec import CandidateSet, CandidateSpec
from ..table.table import Table
from .base import Discoverer, DiscoveryResult
from .kb import KnowledgeBase, seed_knowledge_base

__all__ = ["SantosConfig", "TableAnnotation", "SantosUnionSearch"]


@dataclass(frozen=True)
class SantosConfig:
    """Tuning knobs for :class:`SantosUnionSearch`."""

    min_type_confidence: float = 0.25
    synthesize_kb: bool = True
    synth_min_jaccard: float = 0.35
    relationship_weight: float = 0.6
    column_weight: float = 0.4
    max_distinct_values: int = 500


@dataclass
class TableAnnotation:
    """Semantic summary of one table: per-column types + pair relationships."""

    column_types: dict[str, dict[str, float]] = field(default_factory=dict)
    relationships: dict[str, float] = field(default_factory=dict)

    def all_types(self) -> dict[str, float]:
        """Type -> best confidence across columns."""
        merged: dict[str, float] = {}
        for types in self.column_types.values():
            for type_name, confidence in types.items():
                merged[type_name] = max(merged.get(type_name, 0.0), confidence)
        return merged


class SantosUnionSearch(Discoverer):
    """Top-k semantically unionable table search."""

    name = "santos"
    spec = CandidateSpec(
        channels=("labels",),
        note="sound: a positive score requires a shared type or relationship "
        "label, and all labels are published to the engine at fit time",
    )

    def __init__(self, kb: KnowledgeBase | None = None, config: SantosConfig | None = None):
        super().__init__()
        self.config = config or SantosConfig()
        self._kb = kb if kb is not None else seed_knowledge_base()
        self._annotations: dict[str, TableAnnotation] = {}
        self._tables_by_type: dict[str, set[str]] = {}
        self._tables_by_relationship: dict[str, set[str]] = {}

    @property
    def kb(self) -> KnowledgeBase:
        return self._kb

    def clone_unfitted(self) -> "SantosUnionSearch":
        """Unfitted twin with its **own** knowledge base: fit-time KB
        synthesis (``config.synthesize_kb``) mutates the KB in place, so
        a serving-layer rebuild must grow a copy -- never the object a
        still-serving twin queries concurrently."""
        import copy

        clone = super().clone_unfitted()
        clone._kb = copy.deepcopy(self._kb)
        return clone

    def adopt_kb(self, kb: KnowledgeBase) -> None:
        """Install an externally synthesized knowledge base and disable
        fit-time synthesis (the sharded build path: one KB synthesized
        over the *combined* lake, shared by every shard's fit, so each
        shard's annotations are exactly the global annotations restricted
        to its tables)."""
        self._kb = kb
        if self.config.synthesize_kb:
            from dataclasses import replace

            self.config = replace(self.config, synthesize_kb=False)

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build_index(self, lake: Mapping[str, Table]) -> None:
        if self.config.synthesize_kb:
            self._kb.synthesize_from_tables(
                lake, min_jaccard=self.config.synth_min_jaccard
            )
        self._annotations = {}
        self._tables_by_type = {}
        self._tables_by_relationship = {}
        for table_name, table in lake.items():
            annotation = self.annotate(table)
            self._annotations[table_name] = annotation
            for type_name in annotation.all_types():
                self._tables_by_type.setdefault(type_name, set()).add(table_name)
            for relationship in annotation.relationships:
                self._tables_by_relationship.setdefault(relationship, set()).add(table_name)
        self._publish_labels()

    def _publish_labels(self) -> None:
        """Register the type / relationship maps as engine label
        namespaces (held by reference, so the engine always sees the
        current fit products)."""
        if self._engine is not None:
            self._engine.publish_labels(f"{self.name}:type", self._tables_by_type)
            self._engine.publish_labels(
                f"{self.name}:rel", self._tables_by_relationship
            )

    def _engine_bound(self) -> None:
        # A freshly bound engine (warm start, LakeIndex.load) has no label
        # namespaces yet; the maps ride in this discoverer's pickle.
        self._publish_labels()

    def annotate(self, table: Table) -> TableAnnotation:
        """Annotate one table with column types and pair relationships."""
        annotation = TableAnnotation()
        for column in table.columns:
            annotation.column_types[column] = self._annotate_column(table, column)
        columns = list(table.columns)
        for i in range(len(columns)):
            for j in range(i + 1, len(columns)):
                self._annotate_pair(table, columns[i], columns[j], annotation)
        return annotation

    def _annotate_column(self, table: Table, column: str) -> dict[str, float]:
        distinct = list(table.distinct_values(column))[: self.config.max_distinct_values]
        if not distinct:
            return {}
        support: dict[str, int] = {}
        annotatable = 0
        for value in distinct:
            types = self._kb.types_of(value)
            if types:
                annotatable += 1
                for type_name in types:
                    support[type_name] = support.get(type_name, 0) + 1
        if annotatable == 0:
            return {}
        confidences = {
            type_name: count / annotatable
            for type_name, count in support.items()
            if count / annotatable >= self.config.min_type_confidence
        }
        return confidences

    def _annotate_pair(
        self, table: Table, column_a: str, column_b: str, annotation: TableAnnotation
    ) -> None:
        types_a = annotation.column_types.get(column_a, {})
        types_b = annotation.column_types.get(column_b, {})
        if not types_a or not types_b:
            return
        co_occurrence = self._co_occurrence(table, column_a, column_b)
        if co_occurrence == 0.0:
            return
        for type_a, conf_a in types_a.items():
            for type_b, conf_b in types_b.items():
                for label in self._kb.relations_between(type_a, type_b):
                    confidence = min(conf_a, conf_b) * co_occurrence
                    current = annotation.relationships.get(label, 0.0)
                    annotation.relationships[label] = max(current, confidence)

    @staticmethod
    def _co_occurrence(table: Table, column_a: str, column_b: str) -> float:
        """Fraction of rows where both columns are non-null (a zip of the
        two column arrays; no row view is materialized)."""
        if table.num_rows == 0:
            return 0.0
        from ..table.values import is_null

        array_a = table.column_array(column_a)
        array_b = table.column_array(column_b)
        both = sum(
            1 for a, b in zip(array_a, array_b) if not is_null(a) and not is_null(b)
        )
        return both / table.num_rows

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _candidates(
        self, query: Table, k: int, query_column: str | None
    ) -> CandidateSet:
        """Annotate the query once, then retrieve every table sharing one
        of its relationship / intent-type labels from the engine's label
        postings; the annotation rides in the candidate-set context so the
        scoring phase never re-derives it."""
        engine = self._require_engine()
        query_annotation = self.annotate(query)
        intent = query_column if query_column in query.columns else None
        query_relationships = self._intent_relationships(query, query_annotation, intent)
        intent_types = (
            query_annotation.column_types.get(intent, {})
            if intent is not None
            else query_annotation.all_types()
        )
        candidates = engine.label_candidates(
            self.name,
            self.candidate_spec(),
            {
                f"{self.name}:rel": list(query_relationships),
                f"{self.name}:type": list(intent_types),
            },
            k,
        )
        candidates.context["relationships"] = query_relationships
        candidates.context["intent_types"] = intent_types
        return candidates

    def _search(
        self,
        query: Table,
        k: int,
        query_column: str | None,
        candidates: CandidateSet,
    ) -> list[DiscoveryResult]:
        query_relationships = candidates.context["relationships"]
        intent_types = candidates.context["intent_types"]
        results = []
        for table_name in candidates:
            annotation = self._annotations.get(table_name)
            if annotation is None:
                continue
            score, reason = self._score(
                query_relationships, intent_types, annotation
            )
            if score > 0.0:
                results.append(
                    DiscoveryResult(
                        table_name=table_name,
                        score=score,
                        discoverer=self.name,
                        reason=reason,
                    )
                )
        return results

    def _intent_relationships(
        self, query: Table, annotation: TableAnnotation, intent: str | None
    ) -> dict[str, float]:
        """Relationships the scoring uses.

        With an intent column, SANTOS anchors on the relationships that
        involve one of the intent column's types; without one (or when the
        intent column has no KB types, or none of its relationships
        qualify) every annotated relationship participates.
        """
        if intent is None:
            return dict(annotation.relationships)
        intent_types = set(annotation.column_types.get(intent, {}))
        if not intent_types:
            return dict(annotation.relationships)
        anchored_labels: set[str] = set()
        for type_a in intent_types:
            for type_b in annotation.all_types():
                anchored_labels.update(self._kb.relations_between(type_a, type_b))
        relevant = {
            label: confidence
            for label, confidence in annotation.relationships.items()
            if label in anchored_labels
        }
        return relevant or dict(annotation.relationships)

    def _score(
        self,
        query_relationships: dict[str, float],
        intent_types: dict[str, float],
        candidate: TableAnnotation,
    ) -> tuple[float, str]:
        matched_relationships = []
        relationship_score = 0.0
        if query_relationships:
            for label, query_confidence in query_relationships.items():
                candidate_confidence = candidate.relationships.get(label)
                if candidate_confidence is not None:
                    matched_relationships.append(label)
                    relationship_score += min(query_confidence, candidate_confidence)
            relationship_score /= len(query_relationships)

        matched_types = []
        type_score = 0.0
        if intent_types:
            candidate_types = candidate.all_types()
            for type_name, query_confidence in intent_types.items():
                candidate_confidence = candidate_types.get(type_name)
                if candidate_confidence is not None:
                    matched_types.append(type_name)
                    type_score += min(query_confidence, candidate_confidence)
            type_score /= len(intent_types)

        score = (
            self.config.relationship_weight * relationship_score
            + self.config.column_weight * type_score
        )
        reason_parts = []
        if matched_relationships:
            reason_parts.append("relationships: " + ", ".join(sorted(matched_relationships)[:4]))
        if matched_types:
            shown = [t for t in sorted(matched_types) if not t.startswith("syn:")][:4]
            if shown:
                reason_parts.append("types: " + ", ".join(shown))
        return score, "; ".join(reason_parts)
