"""Knowledge base: the semantic backbone of SANTOS-style union search.

SANTOS annotates columns with *semantic types* and column pairs with
*relationships* by looking values up in a knowledge base.  The original uses
YAGO plus a KB synthesized from the data lake itself; offline we reproduce
both channels:

* a **seed KB** built from :mod:`repro.datalake.seeds` -- a small curated
  ontology (places, vaccines, agencies, people, ...) with alias handling;
* a **synthesized KB** (:meth:`KnowledgeBase.synthesize_from_tables`) that
  clusters lake columns by domain overlap and mints one synthetic type per
  cluster, exactly the role SANTOS's data-driven KB plays when curated
  coverage runs out.

Lookups are case-insensitive on normalized surface forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..table.table import Table
from ..text.similarity import jaccard
from ..text.tokenize import normalize_token

__all__ = ["Relation", "KnowledgeBase", "seed_knowledge_base"]


@dataclass(frozen=True)
class Relation:
    """A directed, labeled relationship between two semantic types."""

    subject_type: str
    object_type: str
    label: str


@dataclass
class _TypeInfo:
    parent: str | None = None
    children: set[str] = field(default_factory=set)


class KnowledgeBase:
    """Typed entities, a type hierarchy, aliases and typed relations."""

    def __init__(self) -> None:
        self._types: dict[str, _TypeInfo] = {}
        self._entity_types: dict[str, set[str]] = {}
        self._canonical: dict[str, str] = {}
        self._relations: dict[tuple[str, str], set[str]] = {}

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def add_type(self, name: str, parent: str | None = None) -> None:
        """Register a type, optionally under *parent* (which must exist)."""
        if parent is not None and parent not in self._types:
            raise KeyError(f"parent type {parent!r} not registered")
        info = self._types.setdefault(name, _TypeInfo())
        if parent is not None:
            info.parent = parent
            self._types[parent].children.add(name)

    def has_type(self, name: str) -> bool:
        """Whether *name* is a registered type."""
        return name in self._types

    @property
    def types(self) -> tuple[str, ...]:
        return tuple(self._types)

    def ancestors(self, type_name: str) -> tuple[str, ...]:
        """Proper ancestors of a type, nearest first."""
        chain = []
        current = self._types.get(type_name)
        while current is not None and current.parent is not None:
            chain.append(current.parent)
            current = self._types.get(current.parent)
        return tuple(chain)

    # ------------------------------------------------------------------
    # Entities and aliases
    # ------------------------------------------------------------------
    def add_entity(self, surface: str, type_name: str, canonical: str | None = None) -> None:
        """Register *surface* as an entity of *type_name*.

        If *canonical* is given, the surface form is recorded as an alias of
        that canonical form (which shares the type).
        """
        if type_name not in self._types:
            self.add_type(type_name)
        key = normalize_token(surface)
        if not key:
            return
        self._entity_types.setdefault(key, set()).add(type_name)
        if canonical is not None:
            self._canonical[key] = normalize_token(canonical)
        else:
            self._canonical.setdefault(key, key)

    def add_alias_group(self, surfaces: Iterable[str], type_name: str | None = None) -> None:
        """Register several surface forms of one entity (first = canonical)."""
        surfaces = list(surfaces)
        if not surfaces:
            return
        canonical = surfaces[0]
        for surface in surfaces:
            if type_name is not None:
                self.add_entity(surface, type_name, canonical=canonical)
            else:
                key = normalize_token(surface)
                if key:
                    self._canonical[key] = normalize_token(canonical)

    def canonical_of(self, surface: str) -> str:
        """Canonical normalized form of *surface* (itself if unknown)."""
        key = normalize_token(surface)
        return self._canonical.get(key, key)

    def same_entity(self, a: str, b: str) -> bool:
        """Whether two surface forms are registered aliases of one entity."""
        return self.canonical_of(a) == self.canonical_of(b)

    def types_of(self, value: object, with_ancestors: bool = True) -> frozenset[str]:
        """Semantic types of a cell value (empty frozenset if unknown)."""
        if not isinstance(value, str):
            return frozenset()
        key = normalize_token(value)
        direct = self._entity_types.get(key)
        if direct is None:
            canonical = self._canonical.get(key)
            if canonical is not None:
                direct = self._entity_types.get(canonical)
        if direct is None:
            return frozenset()
        if not with_ancestors:
            return frozenset(direct)
        expanded: set[str] = set()
        for type_name in direct:
            expanded.add(type_name)
            expanded.update(self.ancestors(type_name))
        return frozenset(expanded)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def add_relation(self, subject_type: str, object_type: str, label: str) -> None:
        """Record that *subject_type* relates to *object_type* via *label*."""
        for type_name in (subject_type, object_type):
            if type_name not in self._types:
                self.add_type(type_name)
        self._relations.setdefault((subject_type, object_type), set()).add(label)

    def relations_between(self, type_a: str, type_b: str) -> frozenset[str]:
        """Labels relating the two types, checked in both directions."""
        labels: set[str] = set()
        labels.update(self._relations.get((type_a, type_b), ()))
        labels.update(self._relations.get((type_b, type_a), ()))
        return frozenset(labels)

    @property
    def num_entities(self) -> int:
        return len(self._entity_types)

    # ------------------------------------------------------------------
    # Data-driven synthesis (SANTOS's synthesized KB)
    # ------------------------------------------------------------------
    def synthesize_from_tables(
        self,
        tables: Mapping[str, Table],
        min_jaccard: float = 0.35,
        min_cluster: int = 2,
        max_values_per_type: int = 2000,
    ) -> int:
        """Mint synthetic types by clustering lake columns on domain overlap.

        Columns whose distinct string-value sets have Jaccard >= *min_jaccard*
        are merged (union-find); every cluster touching >= *min_cluster*
        columns becomes a type ``syn:<n>`` whose entities are the cluster's
        values.  Column pairs co-occurring in a table also mint a synthetic
        relation between their types.  Returns the number of types created.
        """
        # Sorted iteration makes the synthesized KB -- cluster membership,
        # syn:<n> numbering, relation labels -- a pure function of the
        # mapping's *contents*, independent of its iteration order.  The
        # sharded build relies on this: one global KB synthesized over the
        # combined lake must be reproducible regardless of how the shard
        # views are stitched together.
        columns: list[tuple[str, str, frozenset[str]]] = []
        for table_name, table in sorted(tables.items()):
            for column in table.columns:
                domain = frozenset(
                    normalize_token(v) for v in table.column_values(column) if isinstance(v, str)
                )
                if domain:
                    columns.append((table_name, column, domain))
        parent = list(range(len(columns)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        # Only compare columns sharing at least one value (inverted index).
        by_value: dict[str, list[int]] = {}
        for i, (_, _, domain) in enumerate(columns):
            for value in domain:
                by_value.setdefault(value, []).append(i)
        compared: set[tuple[int, int]] = set()
        for owners in by_value.values():
            for a in range(len(owners)):
                for b in range(a + 1, len(owners)):
                    pair = (owners[a], owners[b])
                    if pair in compared:
                        continue
                    compared.add(pair)
                    if jaccard(columns[pair[0]][2], columns[pair[1]][2]) >= min_jaccard:
                        union(*pair)

        clusters: dict[int, list[int]] = {}
        for i in range(len(columns)):
            clusters.setdefault(find(i), []).append(i)

        type_of_column: dict[tuple[str, str], str] = {}
        created = 0
        for members in clusters.values():
            if len(members) < min_cluster:
                continue
            type_name = f"syn:{created}"
            self.add_type(type_name)
            created += 1
            values: set[str] = set()
            for index in members:
                table_name, column, domain = columns[index]
                type_of_column[(table_name, column)] = type_name
                values.update(domain)
            for value in sorted(values)[:max_values_per_type]:
                self.add_entity(value, type_name)

        # Synthetic relations: types whose columns co-occur in some table.
        for table_name, table in sorted(tables.items()):
            typed = [
                type_of_column.get((table_name, column))
                for column in table.columns
            ]
            present = [t for t in typed if t is not None]
            for i in range(len(present)):
                for j in range(i + 1, len(present)):
                    if present[i] != present[j]:
                        label = f"syn_rel:{min(present[i], present[j])}-{max(present[i], present[j])}"
                        self.add_relation(present[i], present[j], label)
        return created


def seed_knowledge_base() -> KnowledgeBase:
    """The curated offline ontology (the YAGO stand-in).

    Types: places (country, city, us_state), organizations (agency, company),
    vaccines, person names, and a few leisure domains; relations mirror the
    paper's running examples (city located_in country, vaccine approved_by
    agency, vaccine originates_from country).
    """
    from ..datalake import seeds

    kb = KnowledgeBase()
    kb.add_type("place")
    kb.add_type("country", parent="place")
    kb.add_type("city", parent="place")
    kb.add_type("us_state", parent="place")
    kb.add_type("organization")
    kb.add_type("agency", parent="organization")
    kb.add_type("company", parent="organization")
    kb.add_type("vaccine")
    kb.add_type("person_name")
    kb.add_type("first_name", parent="person_name")
    kb.add_type("last_name", parent="person_name")
    kb.add_type("sport")
    kb.add_type("cuisine")
    kb.add_type("school_subject")

    for canonical, aliases in seeds.COUNTRIES.items():
        kb.add_alias_group((canonical, *aliases), type_name="country")
    for city in seeds.CITIES:
        kb.add_entity(city, "city")
    for canonical, (aliases, _, _) in seeds.VACCINES.items():
        kb.add_alias_group((canonical, *aliases), type_name="vaccine")
    for canonical, aliases in seeds.AGENCIES.items():
        kb.add_alias_group((canonical, *aliases), type_name="agency")
    for canonical, aliases in seeds.COMPANIES.items():
        kb.add_alias_group((canonical, *aliases), type_name="company")
    for name in seeds.FIRST_NAMES:
        kb.add_entity(name, "first_name")
    for name in seeds.LAST_NAMES:
        kb.add_entity(name, "last_name")
    for canonical, aliases in seeds.US_STATES.items():
        kb.add_alias_group((canonical, *aliases), type_name="us_state")
    for sport in seeds.SPORTS:
        kb.add_entity(sport, "sport")
    for cuisine in seeds.CUISINES:
        kb.add_entity(cuisine, "cuisine")
    for subject in seeds.SCHOOL_SUBJECTS:
        kb.add_entity(subject, "school_subject")

    kb.add_relation("city", "country", "located_in")
    kb.add_relation("vaccine", "agency", "approved_by")
    kb.add_relation("vaccine", "country", "originates_from")
    kb.add_relation("company", "country", "headquartered_in")
    kb.add_relation("first_name", "last_name", "full_name")
    kb.add_relation("city", "us_state", "city_in_state")
    return kb
