"""repro -- a from-scratch reproduction of DIALITE (SIGMOD '23):
Discover, Align and Integrate Open Data Tables.

The public surface in one import::

    from repro import Dialite, Table, DataLake

    pipeline = Dialite(DataLake.from_dir("lake/")).fit()
    outcome = pipeline.discover(query, k=5, query_column="City")
    integrated = pipeline.integrate(outcome)
    pipeline.analyze(integrated, "entity_resolution")

Subpackages (each usable standalone):

- :mod:`repro.table` -- null-aware table engine + relational operators
- :mod:`repro.text` / :mod:`repro.embeddings` / :mod:`repro.sketch` -- kernels
- :mod:`repro.candidates` -- the shared candidate-generation engine
  (inverted postings + sketch prefilter; the sublinear half of search)
- :mod:`repro.discovery` -- SANTOS, LSH Ensemble, JOSIE, user-defined search
- :mod:`repro.alignment` -- ALITE's holistic schema matching
- :mod:`repro.integration` -- Full Disjunction (ALITE + baselines), joins
- :mod:`repro.er` -- entity resolution
- :mod:`repro.analysis` -- downstream apps and quality metrics
- :mod:`repro.datalake` -- catalogs, indexing, synthetic benchmark lakes
- :mod:`repro.store` -- persistent lake store (versioned columnar segments
  + stats/sketch snapshots, incremental ingest, warm-start discovery)
- :mod:`repro.service` -- the concurrent query-serving layer (worker
  pool, versioned result cache, micro-batching, live store reload)
- :mod:`repro.genquery` -- prompt-to-table generation
- :mod:`repro.core` -- the pipeline itself
"""

from .candidates import CandidateEngine, CandidateSpec
from .core.pipeline import Dialite
from .core.results import DiscoveryOutcome, PipelineResult
from .datalake.catalog import DataLake
from .integration.tuples import IntegratedTable
from .service import LakeServer, LakeService, ServiceClient
from .store.lakestore import LakeStore
from .table.table import Table
from .table.values import MISSING, PRODUCED

__version__ = "1.2.0"

__all__ = [
    "Dialite",
    "Table",
    "DataLake",
    "LakeStore",
    "LakeService",
    "LakeServer",
    "ServiceClient",
    "CandidateEngine",
    "CandidateSpec",
    "IntegratedTable",
    "DiscoveryOutcome",
    "PipelineResult",
    "MISSING",
    "PRODUCED",
    "__version__",
]
