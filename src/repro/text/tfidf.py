"""A small TF-IDF weighting scheme over token sets.

Used by discovery scoring to damp ubiquitous tokens (years, "county",
"total") that would otherwise dominate overlap-based measures on open data.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping

__all__ = ["TfIdfWeights"]


class TfIdfWeights:
    """Corpus-level inverse-document-frequency weights.

    A *document* is any token set (typically a column domain).  Weights are
    smooth IDF: ``log(1 + N / (1 + df))``, never zero, so rare tokens score
    high and tokens present in every document still count a little.
    """

    def __init__(self) -> None:
        self._doc_freq: dict[Hashable, int] = {}
        self._num_docs = 0

    def add_document(self, tokens: Iterable[Hashable]) -> None:
        """Register one document's token *set* (duplicates are collapsed)."""
        self._num_docs += 1
        for token in set(tokens):
            self._doc_freq[token] = self._doc_freq.get(token, 0) + 1

    @property
    def num_documents(self) -> int:
        return self._num_docs

    def idf(self, token: Hashable) -> float:
        """Smooth inverse document frequency of *token*."""
        df = self._doc_freq.get(token, 0)
        return math.log(1.0 + self._num_docs / (1.0 + df)) if self._num_docs else 1.0

    def weight_map(self, tokens: Iterable[Hashable]) -> dict[Hashable, float]:
        """IDF weights for a token set, suitable for weighted Jaccard."""
        return {token: self.idf(token) for token in set(tokens)}

    def weighted_containment(
        self, query: Iterable[Hashable], candidate: Mapping[Hashable, float] | set
    ) -> float:
        """IDF-weighted containment of *query* in *candidate* tokens."""
        query_set = set(query)
        if not query_set:
            return 0.0
        candidate_set = set(candidate)
        total = sum(self.idf(t) for t in query_set)
        if total == 0.0:
            return 0.0
        hit = sum(self.idf(t) for t in query_set if t in candidate_set)
        return hit / total
