"""Text kernels: tokenization, set similarity, edit distances, quantities.

Single home for every string-level primitive so discovery, alignment and
entity resolution agree on what a token is and how strings compare.
"""

from .distance import (
    acronym_score,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    name_similarity,
)
from .normalize import numeric_fraction, parse_quantity, to_float
from .similarity import (
    containment,
    cosine_sets,
    dice,
    jaccard,
    overlap,
    weighted_jaccard,
)
from .tfidf import TfIdfWeights
from .tokenize import (
    cell_tokens,
    char_ngrams,
    column_token_set,
    normalize_token,
    word_ngrams,
    word_tokens,
)

__all__ = [
    "normalize_token",
    "word_tokens",
    "char_ngrams",
    "word_ngrams",
    "cell_tokens",
    "column_token_set",
    "jaccard",
    "overlap",
    "containment",
    "dice",
    "cosine_sets",
    "weighted_jaccard",
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "monge_elkan",
    "acronym_score",
    "name_similarity",
    "parse_quantity",
    "to_float",
    "numeric_fraction",
    "TfIdfWeights",
]
