"""Tokenizers shared by discovery, alignment and entity resolution.

Every index in the library (MinHash/LSH Ensemble, JOSIE, SANTOS annotation,
TF-IDF) consumes token sets produced here, so the definition of a "token" is
kept in exactly one place.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from ..table.values import is_null

__all__ = [
    "normalize_token",
    "word_tokens",
    "char_ngrams",
    "word_ngrams",
    "cell_tokens",
    "column_token_set",
]

_WORD_RE = re.compile(r"[a-z0-9]+")


def normalize_token(text: str) -> str:
    """Lowercase and strip surrounding whitespace -- the canonical form."""
    return text.strip().lower()


def word_tokens(text: str) -> list[str]:
    """Alphanumeric word tokens of *text*, lowercased.

    Punctuation splits tokens, so ``"J&J"`` yields ``["j", "j"]`` and
    ``"New Delhi"`` yields ``["new", "delhi"]``.
    """
    return _WORD_RE.findall(text.lower())


def char_ngrams(text: str, n: int = 3, pad: bool = True) -> list[str]:
    """Character n-grams; with padding the string is wrapped in ``#``.

    Padding makes prefixes/suffixes distinctive, which materially helps
    matching short values such as country codes.
    """
    cleaned = normalize_token(text)
    if not cleaned:
        return []
    if pad:
        cleaned = "#" + cleaned + "#"
    if len(cleaned) < n:
        return [cleaned]
    return [cleaned[i : i + n] for i in range(len(cleaned) - n + 1)]


def word_ngrams(text: str, n: int = 2) -> list[str]:
    """Word-level n-grams joined by underscores."""
    words = word_tokens(text)
    if len(words) < n:
        return ["_".join(words)] if words else []
    return ["_".join(words[i : i + n]) for i in range(len(words) - n + 1)]


def cell_tokens(cell: Any) -> list[str]:
    """Tokens of one table cell: nulls contribute nothing, numbers contribute
    their canonical rendering, strings are word-tokenized."""
    if is_null(cell):
        return []
    if isinstance(cell, bool):
        return ["true" if cell else "false"]
    if isinstance(cell, (int, float)):
        return [f"{float(cell):g}"]
    return word_tokens(str(cell))


def column_token_set(values: Iterable[Any]) -> set[str]:
    """The *domain token set* of a column: union of all cell token sets.

    This is the set LSH Ensemble / JOSIE index; containment of a query
    column's token set in a lake column's token set approximates joinability.
    """
    tokens: set[str] = set()
    for value in values:
        tokens.update(cell_tokens(value))
    return tokens
