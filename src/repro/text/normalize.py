"""Quantity normalization: turning open-data strings into numbers.

Open data writes numbers the way people do: ``"63%"``, ``"1.4M"``,
``"263k"``, ``"$1,200"``.  The paper's Example 3 computes correlations over
exactly such columns, so the analysis layer needs a principled parser.  The
parser is opt-in -- type inference never applies it implicitly.
"""

from __future__ import annotations

import re
from typing import Any

from ..table.values import is_null

__all__ = ["parse_quantity", "to_float", "numeric_fraction"]

#: Magnitude suffixes, case-insensitive except "m" vs "M" is unified: open
#: data uses both "1.4M" and "1.4m" for millions in count contexts.
_SUFFIXES = {
    "k": 1e3,
    "m": 1e6,
    "b": 1e9,
    "bn": 1e9,
    "t": 1e12,
    "thousand": 1e3,
    "million": 1e6,
    "billion": 1e9,
    "trillion": 1e12,
}

_QUANTITY_RE = re.compile(
    r"""^\s*
    (?P<currency>[$€£¥])?\s*
    (?P<sign>[-+])?\s*
    (?P<number>\d{1,3}(?:,\d{3})+(?:\.\d+)?|\d*\.?\d+)\s*
    (?P<suffix>k|m|b|bn|t|thousand|million|billion|trillion)?\s*
    (?P<percent>%)?\s*$""",
    re.IGNORECASE | re.VERBOSE,
)


def parse_quantity(text: str) -> float | None:
    """Parse a human-written quantity to a float, or ``None`` if it isn't one.

    Percentages are returned as their face value (``"63%" -> 63.0``), because
    that is how the paper's running example treats vaccination rates; callers
    needing fractions can divide by 100.  Magnitude suffixes are expanded
    (``"1.4M" -> 1_400_000.0``); thousands separators and currency symbols
    are tolerated.
    """
    match = _QUANTITY_RE.match(text)
    if match is None:
        return None
    number = float(match.group("number").replace(",", ""))
    if match.group("sign") == "-":
        number = -number
    suffix = match.group("suffix")
    if suffix:
        number *= _SUFFIXES[suffix.lower()]
    return number


def to_float(cell: Any) -> float | None:
    """Best-effort numeric view of a cell: numbers pass through, strings go
    through :func:`parse_quantity`, nulls and everything else give ``None``."""
    if is_null(cell) or cell is None:
        return None
    if isinstance(cell, bool):
        return 1.0 if cell else 0.0
    if isinstance(cell, (int, float)):
        return float(cell)
    if isinstance(cell, str):
        return parse_quantity(cell)
    return None


def numeric_fraction(values: list[Any]) -> float:
    """Fraction of cells that have a numeric view -- used by alignment to
    gate numeric columns against string columns."""
    if not values:
        return 0.0
    return sum(1 for v in values if to_float(v) is not None) / len(values)
