"""Set-similarity measures over token sets.

These are the exact measures the approximate indexes (MinHash, LSH Ensemble)
estimate; keeping the exact versions here lets tests assert estimator error
bounds and lets JOSIE-style exact search share one implementation.
"""

from __future__ import annotations

from typing import Collection, Hashable, Set

__all__ = [
    "jaccard",
    "overlap",
    "containment",
    "dice",
    "cosine_sets",
    "weighted_jaccard",
]


def jaccard(a: Set[Hashable], b: Set[Hashable]) -> float:
    """|a ∩ b| / |a ∪ b|; 1.0 when both are empty (identical emptiness)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    inter = len(a & b)
    return inter / (len(a) + len(b) - inter)


def overlap(a: Set[Hashable], b: Set[Hashable]) -> int:
    """|a ∩ b| -- JOSIE's ranking function."""
    if len(a) > len(b):
        a, b = b, a
    return sum(1 for item in a if item in b)


def containment(query: Set[Hashable], candidate: Set[Hashable]) -> float:
    """|query ∩ candidate| / |query| -- LSH Ensemble's ranking function.

    Asymmetric by design: a small query column fully contained in a huge
    lake column is perfectly joinable even though their Jaccard is tiny.
    """
    if not query:
        return 0.0
    return overlap(query, candidate) / len(query)


def dice(a: Set[Hashable], b: Set[Hashable]) -> float:
    """2|a ∩ b| / (|a| + |b|)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return 2 * overlap(a, b) / (len(a) + len(b))


def cosine_sets(a: Set[Hashable], b: Set[Hashable]) -> float:
    """Set cosine: |a ∩ b| / sqrt(|a| * |b|)."""
    if not a or not b:
        return 1.0 if (not a and not b) else 0.0
    return overlap(a, b) / (len(a) * len(b)) ** 0.5


def weighted_jaccard(a: dict[Hashable, float], b: dict[Hashable, float]) -> float:
    """Weighted Jaccard over non-negative weight maps:
    sum(min) / sum(max) across the key union."""
    if not a and not b:
        return 1.0
    numerator = 0.0
    denominator = 0.0
    for key in set(a) | set(b):
        wa = a.get(key, 0.0)
        wb = b.get(key, 0.0)
        numerator += min(wa, wb)
        denominator += max(wa, wb)
    if denominator == 0.0:
        return 1.0
    return numerator / denominator
