"""String edit distances and similarities used by entity resolution.

Implemented from scratch (the paper uses ``py_entitymatching``, whose feature
library is built on exactly these measures): Levenshtein, Jaro, Jaro-Winkler,
a monge-elkan style token-set combiner, and an acronym matcher that lets
``"USA"`` match ``"United States of America"`` -- the kind of surface-form
variation the Figure 8 entity-resolution demo must survive.
"""

from __future__ import annotations

from .tokenize import word_tokens

__all__ = [
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "monge_elkan",
    "acronym_score",
    "name_similarity",
]


def levenshtein(a: str, b: str) -> int:
    """Classic dynamic-programming edit distance (insert/delete/substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance; 1.0 for two empty strings."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    match_a = [False] * len_a
    match_b = [False] * len_b
    matches = 0
    for i, char in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len_b)
        for j in range(start, end):
            if match_b[j] or b[j] != char:
                continue
            match_a[i] = match_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len_a):
        if not match_a[i]:
            continue
        while not match_b[k]:
            k += 1
        if a[i] != b[k]:
            transpositions += 1
        k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix."""
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:max_prefix], b[:max_prefix]):
        if char_a != char_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def monge_elkan(a: str, b: str) -> float:
    """Token-level combiner: each token of *a* matched to its best token of
    *b* by Jaro-Winkler, averaged.  Symmetrized by taking the max of both
    directions so the measure does not punish the longer name."""
    tokens_a = word_tokens(a)
    tokens_b = word_tokens(b)
    if not tokens_a or not tokens_b:
        return 1.0 if not tokens_a and not tokens_b else 0.0

    def directed(xs: list[str], ys: list[str]) -> float:
        return sum(max(jaro_winkler(x, y) for y in ys) for x in xs) / len(xs)

    return max(directed(tokens_a, tokens_b), directed(tokens_b, tokens_a))


def acronym_score(short: str, long: str) -> float:
    """Score how well *short* abbreviates *long* (order-preserving initials).

    ``"USA"`` vs ``"United States of America"`` scores 1.0 because every
    letter of the acronym consumes one word initial in order (little words
    like "of" may be skipped).  Returns 0.0 when the shapes don't fit.
    """
    letters = [c for c in short.lower() if c.isalnum()]
    words = word_tokens(long)
    if not letters or len(words) < 2 or len(letters) > len(words):
        return 0.0
    position = 0
    consumed = 0
    for letter in letters:
        found = False
        while position < len(words):
            if words[position][0] == letter:
                found = True
                position += 1
                consumed += 1
                break
            position += 1
        if not found:
            return 0.0
    # All acronym letters matched initials in order; score by word coverage
    # of the long form so "US" vs "United States" is perfect and partial
    # coverage degrades smoothly.  Connector words never count against
    # coverage ("FDA" fully covers "Food and Drug Administration").
    stopwords = {"and", "of", "the", "for", "in", "on", "de", "at"}
    significant = [w for w in words if w not in stopwords] or words
    return min(1.0, consumed / len(significant))


def name_similarity(a: str, b: str) -> float:
    """The library's default "are these the same name?" similarity.

    Combines character-level (Jaro-Winkler on the squashed strings),
    token-level (Monge-Elkan) and acronym evidence; returns the max, since
    any one strong signal suffices for a name match.
    """
    a_clean = "".join(word_tokens(a))
    b_clean = "".join(word_tokens(b))
    if not a_clean and not b_clean:
        return 1.0
    if a_clean == b_clean:
        return 1.0
    scores = [
        jaro_winkler(a_clean, b_clean),
        monge_elkan(a, b),
    ]
    if len(a_clean) < len(b_clean):
        scores.append(acronym_score(a, b))
    else:
        scores.append(acronym_score(b, a))
    return max(scores)
