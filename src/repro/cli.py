"""Command-line interface: the DIALITE pipeline over CSV lake directories.

The demo paper fronts the pipeline with a web app; this CLI is the
equivalent headless surface::

    python -m repro lake-info  --lake lake/
    python -m repro profile    --lake lake/ [--table T3]
    python -m repro generate   --prompt "covid cases, 5 rows" --out query.csv
    python -m repro index build  --lake lake/ --store lake.store
    python -m repro index update --lake lake/ --store lake.store
    python -m repro index info   --store lake.store
    python -m repro store migrate --store lake.store --format v2
    python -m repro discover   --store lake.store --query query.csv --column City
    python -m repro discover   --lake lake/ --query query.csv --column City -k 5
    python -m repro discover   --lake lake/ --queries q1.csv q2.csv --column City
    python -m repro integrate  --lake lake/ --query query.csv --column City \
                               --integrator alite_fd --out integrated.csv
    python -m repro integrate  --tables a.csv b.csv c.csv --out integrated.csv
    python -m repro integrate  --tables a.csv b.csv c.csv --workers 4 --explain
    python -m repro serve      --store lake.store --port 8765 --workers 8
    python -m repro obs export 127.0.0.1:8765 --format prometheus
    python -m repro obs top    127.0.0.1:8765 --interval 2
    python -m repro discover   --service 127.0.0.1:8765 --query query.csv --column City
    python -m repro integrate  --service 127.0.0.1:8765 --query query.csv --column City
    python -m repro analyze    --table integrated.csv --app correlation \
                               --option "columns=Vaccination Rate,Death Rate"
    python -m repro report     --lake lake/ --query query.csv --column City \
                               --out run.md

Every command prints human-readable tables to stdout; ``--out`` writes CSV
with the paper's ``±``/``⊥`` null markers.  ``serve`` puts a warm lake
behind the concurrent serving layer (:mod:`repro.service`);
``--service host:port`` routes discover/integrate through a running
service instead of opening the store locally.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from .core.pipeline import Dialite
from .datalake.catalog import DataLake
from .genquery.generator import generate_query_table
from .integration.tuples import IntegratedTable
from .table.io import read_csv, write_csv
from .table.table import Table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of all CLI subcommands (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DIALITE reproduction: discover, align and integrate open data tables.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("lake-info", help="summarize a CSV lake directory")
    info.add_argument("--lake", required=True, help="directory of CSV files")

    profile = commands.add_parser(
        "profile", help="per-column statistics for every table in a lake"
    )
    profile.add_argument("--lake", required=True, help="directory of CSV files")
    profile.add_argument("--table", default=None, help="profile one table only")

    generate = commands.add_parser("generate", help="generate a query table from a prompt")
    generate.add_argument("--prompt", required=True)
    generate.add_argument("--rows", type=int, default=None)
    generate.add_argument("--columns", type=int, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", default=None, help="write the table as CSV")

    index = commands.add_parser(
        "index", help="build / update / inspect a persistent lake store"
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)
    index_build = index_commands.add_parser(
        "build", help="ingest a CSV lake into a store and fit discoverer indexes"
    )
    index_update = index_commands.add_parser(
        "update", help="incrementally re-ingest a CSV lake into an existing store"
    )
    for sub in (index_build, index_update):
        sub.add_argument("--lake", required=True, help="directory of CSV files")
        sub.add_argument("--store", required=True, help="lake store directory")
        sub.add_argument(
            "--discoverers", default=None,
            help="comma-separated roster to fit (default: santos,lsh_ensemble,josie)",
        )
        sub.add_argument(
            "--all-discoverers", action="store_true",
            help="fit every built-in discoverer (adds starmie, tus, cocoa)",
        )
    index_build.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="create a sharded lake of N shards (content-hash routed; "
        "discovery scatter-gathers with byte-identical results)",
    )
    index_info = index_commands.add_parser(
        "info", help="summarize a store: version, tables, persisted indexes"
    )
    index_info.add_argument("--store", required=True, help="lake store directory")

    store_cmd = commands.add_parser(
        "store", help="maintain a lake store's on-disk layout"
    )
    store_commands = store_cmd.add_subparsers(dest="store_command", required=True)
    store_migrate = store_commands.add_parser(
        "migrate",
        help="rewrite every table segment to a format (v1 JSONL <-> v2 binary); "
        "stats, sketches, lake version and persisted indexes are untouched",
    )
    store_migrate.add_argument("--store", required=True, help="lake store directory")
    store_migrate.add_argument(
        "--format", dest="segment_format", default="v2", choices=("v1", "v2"),
        help="target segment format (default: v2, the binary columnar format)",
    )
    store_recover = store_commands.add_parser(
        "recover",
        help="settle a crashed writer's intent journal (roll an interrupted "
        "ingest/rebalance forward or back, delete orphan temp files); the "
        "same recovery runs implicitly on every open",
    )
    store_recover.add_argument(
        "--store", required=True, help="lake store directory (plain or sharded)"
    )
    store_shard = store_commands.add_parser(
        "shard",
        help="create, resize or inspect a sharded lake "
        "(N content-hash-routed sub-stores under one manifest)",
    )
    shard_commands = store_shard.add_subparsers(dest="shard_command", required=True)
    shard_init = shard_commands.add_parser(
        "init", help="create an empty sharded lake store"
    )
    shard_init.add_argument("--store", required=True, help="sharded lake directory")
    shard_init.add_argument(
        "--shards", type=int, required=True, metavar="N", help="number of shards"
    )
    shard_init.add_argument(
        "--routing-seed", type=int, default=None,
        help="routing hash seed (default: derived from the layout)",
    )
    shard_rebalance = shard_commands.add_parser(
        "rebalance",
        help="re-route every table into a new shard count (full rewrite; "
        "drops persisted per-shard indexes and the global fit state)",
    )
    shard_rebalance.add_argument("--store", required=True, help="sharded lake directory")
    shard_rebalance.add_argument(
        "--shards", type=int, required=True, metavar="N", help="new number of shards"
    )
    shard_rebalance.add_argument(
        "--routing-seed", type=int, default=None,
        help="new routing seed (default: keep the current one)",
    )
    shard_info = shard_commands.add_parser(
        "info", help="per-shard table counts and versions"
    )
    shard_info.add_argument("--store", required=True, help="sharded lake directory")

    discover = commands.add_parser("discover", help="find tables related to a query")
    _add_discovery_arguments(discover, query_required=False)
    discover.add_argument(
        "--queries", nargs="+", default=None,
        help="batch of query CSVs: the lake is indexed once and each query's "
        "column sketches are computed once across all discoverers",
    )
    discover.add_argument(
        "--explain", action="store_true",
        help="also print per-discoverer retrieval accounting: candidates "
        "retrieved before scoring, channels used, fallbacks",
    )
    discover.add_argument(
        "--trace", action="store_true",
        help="print the request's span tree: nested wall/self timings and "
        "counters for every pipeline stage (service requests return the "
        "server-side tree)",
    )

    integrate = commands.add_parser(
        "integrate", help="discover (or take) an integration set and integrate it"
    )
    _add_discovery_arguments(integrate, query_required=False)
    integrate.add_argument(
        "--tables", nargs="+", default=None,
        help="explicit integration set (CSV files); skips discovery",
    )
    integrate.add_argument("--integrator", default=None)
    integrate.add_argument("--no-align", action="store_true", help="inputs are pre-aligned")
    integrate.add_argument("--out", default=None, help="write the integrated table as CSV")
    integrate.add_argument(
        "--workers", type=int, default=1,
        help="FD worker processes: >1 integrates with the component-parallel "
        "kernel (identical results; pays off on many-component inputs)",
    )
    integrate.add_argument(
        "--explain", action="store_true",
        help="print kernel accounting: connected components, interned "
        "domain size, intern/partition/closure/subsume timings",
    )
    integrate.add_argument(
        "--trace", action="store_true",
        help="print the request's span tree (discovery, alignment and the "
        "FD kernel's intern/partition/closure/subsume phases)",
    )

    trace_cmd = commands.add_parser(
        "trace",
        help="re-run a discover/integrate invocation with --trace appended",
        description="Shorthand: `repro trace discover --lake lake/ --query q.csv` "
        "is `repro discover --lake lake/ --query q.csv --trace`.",
    )
    trace_cmd.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="the discover/integrate command line to trace",
    )

    serve = commands.add_parser(
        "serve", help="serve a lake store to concurrent clients over TCP"
    )
    serve.add_argument("--store", required=True, help="lake store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one, printed at start)")
    serve.add_argument("--workers", type=int, default=4, help="worker threads")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max in-flight requests before overload rejection")
    serve.add_argument("--cache-capacity", type=int, default=1024,
                       help="result-cache entries (LRU)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="result-cache TTL seconds (default: version-bound only)")
    serve.add_argument("--batch-window", type=float, default=0.02,
                       help="discover micro-batching window in seconds (0 disables)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline in seconds")
    serve.add_argument("--stats-cache-capacity", type=int, default=None,
                       help="bound the store's hydrated-stats LRU (long-running services)")
    serve.add_argument("--candidate-budget", type=int, default=None)
    serve.add_argument("--fd-workers", type=int, default=1)
    serve.add_argument("--port-file", default=None,
                       help="write 'host port lake_version' here once bound (for scripts)")
    serve.add_argument("--trace-path", default=None,
                       help="JSONL sink: every request's span tree, one per line")
    serve.add_argument("--trace-path-max-bytes", type=int, default=None,
                       help="rotate the trace sink past this size (keeps 3 backups)")
    serve.add_argument("--postmortem-path", default=None,
                       help="flight-recorder postmortem JSONL: full span tree + "
                       "recent request ring on every errored/deadline/degraded/"
                       "slow request")
    serve.add_argument("--latency-threshold-ms", type=float, default=None,
                       help="also trip a postmortem when a request exceeds this latency")
    serve.add_argument("--export-path", default=None,
                       help="telemetry exporter JSONL: periodic metrics snapshots "
                       "+ completed span trees (rotating)")
    serve.add_argument("--export-interval", type=float, default=30.0,
                       help="exporter flush interval in seconds (default 30)")

    obs = commands.add_parser(
        "obs", help="operate on a running service's telemetry"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_export = obs_commands.add_parser(
        "export", help="pull a running service's merged metrics snapshot"
    )
    obs_export.add_argument("address", metavar="HOST:PORT",
                            help="a running `repro serve` instance")
    obs_export.add_argument(
        "--format", dest="export_format", default="prometheus",
        choices=("prometheus", "json"),
        help="prometheus text exposition (default) or the raw JSON snapshot",
    )
    obs_export.add_argument("--out", default=None, help="write here instead of stdout")
    obs_top = obs_commands.add_parser(
        "top", help="poll a running service's health: status, SLO burn, shards"
    )
    obs_top.add_argument("address", metavar="HOST:PORT",
                         help="a running `repro serve` instance")
    obs_top.add_argument("--interval", type=float, default=2.0,
                         help="poll interval in seconds (default 2)")
    obs_top.add_argument("--iterations", type=int, default=None,
                         help="stop after N polls (default: until Ctrl-C)")

    report = commands.add_parser(
        "report", help="run the full pipeline and write a markdown report"
    )
    _add_discovery_arguments(report)
    report.add_argument("--integrator", default="alite_fd")
    report.add_argument("--out", default=None, help="write the markdown report here")

    analyze = commands.add_parser("analyze", help="run a downstream app over a table")
    analyze.add_argument("--table", required=True, help="CSV file to analyze")
    analyze.add_argument("--app", default="describe",
                         help="describe | aggregation | correlation | entity_resolution")
    analyze.add_argument(
        "--option", action="append", default=[],
        help="app option as key=value; comma-separated values become lists",
    )
    return parser


def _add_discovery_arguments(parser: argparse.ArgumentParser, query_required: bool = True) -> None:
    parser.add_argument("--lake", default=None, help="directory of CSV files")
    parser.add_argument(
        "--store", default=None,
        help="persistent lake store directory (warm start; alternative to --lake)",
    )
    parser.add_argument(
        "--service", default=None, metavar="HOST:PORT",
        help="route through a running `repro serve` instance instead of "
        "opening the lake locally (shared warm indexes + result cache)",
    )
    parser.add_argument("--query", required=query_required, default=None, help="query table CSV")
    parser.add_argument("--column", default=None, help="intent/join column of the query")
    parser.add_argument("-k", type=int, default=10, help="top-k per discoverer")
    parser.add_argument(
        "--discoverers", default=None,
        help="comma-separated subset (santos,lsh_ensemble,josie)",
    )
    parser.add_argument(
        "--candidate-budget", type=int, default=None,
        help="cap candidate tables retrieved per discoverer before scoring "
        "(default: unbudgeted, which guarantees full-scan-identical top-k)",
    )


def _parse_options(raw_options: Sequence[str]) -> dict[str, Any]:
    options: dict[str, Any] = {}
    for raw in raw_options:
        if "=" not in raw:
            raise SystemExit(f"--option must be key=value, got {raw!r}")
        key, _, value = raw.partition("=")
        if "," in value:
            options[key.strip()] = [part.strip() for part in value.split(",")]
        else:
            options[key.strip()] = value.strip()
    return options


def _load_pipeline(args: argparse.Namespace) -> Dialite:
    """The discovery pipeline behind discover/integrate/report: a warm
    start from ``--store`` when given, else a cold fit over ``--lake``."""
    budget = getattr(args, "candidate_budget", None)
    workers = getattr(args, "workers", 1)
    if getattr(args, "store", None):
        return Dialite.open(
            args.store, candidate_budget=budget, fd_workers=workers
        ).fit()
    return Dialite(
        DataLake.from_dir(args.lake), candidate_budget=budget, fd_workers=workers
    ).fit()


def _resolve_roster(args: argparse.Namespace, lake) -> list:
    """The discoverer instances an index build should fit."""
    pipeline = (
        Dialite.with_all_discoverers(lake) if args.all_discoverers else Dialite(lake)
    )
    if args.discoverers:
        names = [n.strip() for n in args.discoverers.split(",") if n.strip()]
        return [pipeline.discoverers.get(name) for name in names]
    return pipeline.discoverers.components()


def _emit(table: Table, out: str | None) -> None:
    print(table.to_pretty(max_rows=50))
    if out:
        write_csv(table, out)
        print(f"\nwritten: {out}")


def _maybe_trace(enabled: bool, name: str):
    """``(tracer, context)`` -- an ambient tracer rooted at ``name`` when
    ``--trace`` was asked, else ``(None, nullcontext())`` (zero overhead)."""
    if not enabled:
        from contextlib import nullcontext

        return None, nullcontext()
    from contextlib import ExitStack

    from .obs import trace as tracing

    tracer = tracing.Tracer()
    stack = ExitStack()
    stack.enter_context(tracing.activate(tracer))
    stack.enter_context(tracer.span(name))
    return tracer, stack


def _print_trace(document: dict | None) -> None:
    """Render one span tree (local tracer dict or wire ``trace`` field)."""
    from .obs.trace import format_trace

    print("\ntrace:")
    print(format_trace(document or {}))


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_lake_info(args: argparse.Namespace) -> int:
    lake = DataLake.from_dir(args.lake)
    print(f"{len(lake)} tables, {lake.total_rows()} rows total\n")
    rows = [
        (name, table.num_rows, table.num_columns, ", ".join(table.columns[:6]))
        for name, table in lake.items()
    ]
    print(Table(["table", "rows", "cols", "columns"], rows, name="lake").to_pretty(100))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .datalake.profiler import profile_lake, profile_table

    lake = DataLake.from_dir(args.lake)
    if args.table is not None:
        print(profile_table(lake[args.table]).to_pretty(200))
    else:
        print(profile_lake(lake).to_pretty(500))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    table = generate_query_table(
        args.prompt, rows=args.rows, columns=args.columns, seed=args.seed
    )
    _emit(table, args.out)
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from .datalake.indexer import LakeIndex
    from .shard import ShardedLakeIndex, ShardedLakeStore, open_any_store
    from .store import LakeStore

    if args.index_command == "info":
        info = open_any_store(args.store, check_sketch=False).info()
        if info.get("sharded"):
            _print_sharded_info(info)
            _print_live_service(args.store, info["lake_version"])
            return 0
        counts = info.get("segment_format_counts") or {}
        mix = ", ".join(f"{fmt}: {n}" for fmt, n in sorted(counts.items()) if n)
        print(
            f"lake store: {info['path']}\n"
            f"format v{info['format_version']}, lake version {info['lake_version']}\n"
            f"{info['num_tables']} tables, {info['total_rows']} rows total\n"
            f"segment format: {info.get('segment_format', 'v1')}"
            + (f" ({mix})" if mix else "")
            + f"\nsketch config: {info['sketch']}"
        )
        if info["indexes"]:
            staleness = (
                "current"
                if info["indexes_lake_version"] == info["lake_version"]
                else f"stale (built at v{info['indexes_lake_version']})"
            )
            print(f"persisted indexes ({staleness}): {', '.join(info['indexes'])}")
        else:
            print("persisted indexes: none")
        postings = info.get("postings")
        if postings:
            staleness = (
                "current"
                if postings.get("lake_version") == info["lake_version"]
                else f"stale (built at v{postings.get('lake_version')})"
            )
            values = (
                f", {postings['values']} values / {postings['value_entries']} entries"
                if postings.get("values") is not None
                else ""
            )
            print(
                f"persisted postings ({staleness}): {postings['columns']} columns, "
                f"{postings['tokens']} tokens / {postings['token_entries']} entries"
                f"{values}"
            )
            for ensemble in postings.get("ensembles") or []:
                print(
                    f"  sketch prefilter: {ensemble['indexed_columns']} columns, "
                    f"{ensemble['bands']} LSH bands (num_perm={ensemble['num_perm']}, "
                    f"{ensemble['num_partitions']} partitions)"
                )
        else:
            print("persisted postings: none")
        for name, spec in sorted((info.get("candidate_specs") or {}).items()):
            budget = spec["budget"] if spec["budget"] is not None else "unbudgeted"
            print(
                f"  {name}: channels={'+'.join(spec['channels'])}, "
                f"budget={budget}, fallback floor={spec['min_candidates']}"
            )
        _print_live_service(args.store, info["lake_version"])
        if info["tables"]:
            rows = [
                (
                    name,
                    entry["rows"],
                    entry["columns"],
                    entry.get("segment_format", "v1"),
                    entry["content_hash"],
                )
                for name, entry in sorted(info["tables"].items())
            ]
            print()
            print(
                Table(
                    ["table", "rows", "cols", "seg", "content_hash"], rows, name="store"
                ).to_pretty(200)
            )
        return 0

    lake = DataLake.from_dir(args.lake)
    if args.index_command == "build":
        from pathlib import Path as _Path

        if getattr(args, "shards", None):
            store = ShardedLakeStore.create(
                args.store, num_shards=args.shards, exist_ok=True
            )
            if store.num_shards != args.shards:
                print(
                    f"store is already sharded into {store.num_shards}; "
                    f"use `repro store shard rebalance --shards {args.shards}` "
                    f"to change the layout",
                    file=sys.stderr,
                )
                return 2
        elif (_Path(args.store) / "lake.json").exists():
            # An existing sharded layout: keep building it sharded.
            store = open_any_store(args.store)
        else:
            store = LakeStore.create(args.store, exist_ok=True)
    else:  # update: incremental by design, so the store must already exist
        store = open_any_store(args.store)
    report = store.ingest(lake)
    print(f"ingest {report.summary()}")
    warm_lake = store.lake()
    roster = _resolve_roster(args, warm_lake)
    if isinstance(store, ShardedLakeStore):
        # Per-shard hydration reuses every shard whose version (and
        # persisted roster) is current and refits only the rest.
        index = ShardedLakeIndex.from_store(store, roster)
        timings = ", ".join(
            f"{name}: {seconds:.2f}s"
            for name, seconds in sorted(index.build_seconds.items())
        )
        index.close()
        print(
            f"fitted {store.num_shards}-shard indexes ({timings}) "
            f"persisted to {store.path}"
        )
        return 0
    persisted = store.load_indexes()
    if not report.changed and all(d.name in persisted for d in roster):
        print("lake unchanged; persisted indexes are current")
        return 0
    # from_store reuses any still-current persisted index and fits only
    # the missing roster members (everything, after a content change).
    index = LakeIndex.from_store(store, roster, lake=warm_lake)
    index.save_to_store(store)
    timings = ", ".join(
        f"{name}: {seconds:.2f}s" for name, seconds in index.build_seconds.items()
    )
    print(f"fitted indexes ({timings}) persisted to {store.path}")
    return 0


def _print_sharded_info(info: dict) -> None:
    """The `index info` / `store shard info` summary of a sharded lake."""
    counts = info.get("segment_format_counts") or {}
    mix = ", ".join(f"{fmt}: {n}" for fmt, n in sorted(counts.items()) if n)
    print(
        f"sharded lake store: {info['path']}\n"
        f"format v{info['format_version']}, lake epoch {info['lake_version']}, "
        f"{info['num_shards']} shards (routing seed {info['routing_seed']})\n"
        f"{info['num_tables']} tables, {info['total_rows']} rows total\n"
        f"segment format: {info.get('segment_format', 'v1')}"
        + (f" ({mix})" if mix else "")
        + f"\nsketch config: {info['sketch']}"
    )
    if info.get("indexes"):
        print(f"persisted indexes (union across shards): {', '.join(info['indexes'])}")
    else:
        print("persisted indexes: none")
    rows = [
        (
            entry["name"],
            entry["lake_version"],
            entry["num_tables"],
            entry["total_rows"],
            ", ".join(entry["indexes"]) or "-",
        )
        for entry in info["shards"]
    ]
    print()
    print(
        Table(
            ["shard", "version", "tables", "rows", "indexes"], rows, name="shards"
        ).to_pretty(200)
    )


def _cmd_store(args: argparse.Namespace) -> int:
    from .shard import ShardedLakeStore, open_any_store

    if args.store_command == "recover":
        from .shard import recover_any_store

        repairs = recover_any_store(args.store)
        if not repairs:
            print("clean: no interrupted operation found")
            return 0
        for repair in repairs:
            where = f" (shard {repair['shard']})" if "shard" in repair else ""
            removed = repair.get("removed", [])
            print(
                f"{repair.get('op', '?')}{where}: {repair['action'].replace('_', ' ')}"
                + (f", {len(removed)} orphan file(s) removed" if removed else "")
            )
        return 0
    if args.store_command == "shard":
        if args.shard_command == "init":
            seed = args.routing_seed if args.routing_seed is not None else 0
            store = ShardedLakeStore.create(
                args.store, num_shards=args.shards, routing_seed=seed
            )
            print(
                f"created empty sharded lake at {store.path}: "
                f"{store.num_shards} shards, routing seed {store.routing_seed}"
            )
            return 0
        store = ShardedLakeStore.open(args.store, check_sketch=False)
        if args.shard_command == "rebalance":
            before = store.num_shards
            store = store.rebalance(args.shards, routing_seed=args.routing_seed)
            print(
                f"rebalanced {len(store)} tables from {before} into "
                f"{store.num_shards} shards (routing seed {store.routing_seed}); "
                f"persisted indexes and global fit state dropped -- "
                f"run `repro index build` to refit"
            )
            return 0
        _print_sharded_info(store.info())  # shard info
        return 0

    store = open_any_store(args.store, check_sketch=False)
    before = dict(store.segment_format_counts())
    rewritten = store.migrate(segment_format=args.segment_format)
    after = store.segment_format_counts()
    mix = ", ".join(f"{fmt}: {n}" for fmt, n in sorted(after.items()))
    print(
        f"migrated {len(rewritten)} of {sum(before.values())} table segments "
        f"to {args.segment_format} (now {mix or 'empty store'}); "
        f"lake version {store.lake_version} unchanged"
    )
    return 0


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(args.service)


def _print_service_discovery(response: dict) -> None:
    """Render one wire discover response like the local summary table."""
    rows = [
        (r["table"], round(r["score"], 4), r["discoverer"], r["reason"])
        for r in response["payload"]["results"]
    ]
    print(Table(["table", "score", "best_discoverer", "reason"], rows, name="discovery").to_pretty(50))
    print(
        f"lake v{response['lake_version']}"
        + (" (served from cache)" if response.get("cached") else "")
    )


def _print_live_service(store_path: str, store_version: int) -> None:
    """The `index info` live-service line: is a `repro serve` process
    currently holding this lake, and at which version?"""
    from .service import ServiceClient
    from .service.protocol import read_beacon

    beacon = read_beacon(store_path)
    if not beacon:
        print("live service: none")
        return
    address = f"{beacon['host']}:{beacon['port']}"
    pid = beacon.get("pid")
    if pid is not None:
        # An unclean exit leaves the beacon behind; a dead PID settles
        # "not serving" instantly instead of waiting out a ping timeout.
        import os

        try:
            os.kill(int(pid), 0)
        except ProcessLookupError:
            print(
                f"live service: none "
                f"(stale beacon for {address}: process {pid} is gone)"
            )
            return
        except (PermissionError, OSError, ValueError):
            pass  # alive but not ours, or unreadable pid: fall through to ping
    try:
        served = ServiceClient(address, timeout=1.0).version()
    except Exception:
        print(f"live service: beacon for {address} is stale (not responding)")
        return
    freshness = (
        "current"
        if served == store_version
        else f"behind store (serving v{served}, store at v{store_version})"
    )
    print(f"live service: {address} serving lake v{served} ({freshness})")


def _cmd_discover(args: argparse.Namespace) -> int:
    if args.lake is None and args.store is None and args.service is None:
        raise SystemExit("discover requires --lake, --store or --service")
    if args.query is None and not args.queries:
        raise SystemExit("discover requires --query or --queries")
    if args.query is not None and args.queries:
        raise SystemExit("pass either --query or --queries, not both")
    names = args.discoverers.split(",") if args.discoverers else None
    if args.service:
        client = _service_client(args)
        for path in args.queries or [args.query]:
            query = read_csv(path)
            response = client.discover(
                query, k=args.k, column=args.column, discoverers=names,
                trace=args.trace,
            )
            print(f"query: {query.name}")
            _print_service_discovery(response)
            if args.trace:
                _print_trace(response.get("trace"))
            print()
        return 0
    pipeline = _load_pipeline(args)
    if args.queries:
        queries = [read_csv(path) for path in args.queries]
        tracer, tracing_ctx = _maybe_trace(args.trace, "cli.discover")
        with tracing_ctx:
            outcomes = pipeline.discover_many(
                queries, k=args.k, query_column=args.column, discoverer_names=names
            )
        for outcome in outcomes:
            print(f"query: {outcome.query.name}")
            print(outcome.summary().to_pretty(50))
            if args.explain:
                _print_retrieval(outcome.retrieval)
            print()
        if tracer is not None:
            _print_trace(tracer.to_dict())
        return 0
    query = read_csv(args.query)
    tracer, tracing_ctx = _maybe_trace(args.trace, "cli.discover")
    with tracing_ctx:
        outcome = pipeline.discover(
            query, k=args.k, query_column=args.column, discoverer_names=names
        )
    print(outcome.summary().to_pretty(50))
    if args.explain:
        _print_retrieval(outcome.retrieval)
        engine = getattr(pipeline.index, "engine", None)
        if engine is not None:
            engine_stats = engine.stats()
            budget = engine_stats["default_budget"]
            print(
                f"\nengine: {engine_stats['tables']} tables, "
                f"budget={'unbudgeted' if budget is None else budget}, "
                f"postings loaded from store: {engine_stats['loaded_from_store']}"
            )
        else:  # sharded: one engine per shard, summarized by the reducer
            index = pipeline.index
            print(
                f"\nsharded engine: {len(index.store)} tables across "
                f"{index.store.num_shards} shards ({index.executor})"
            )
    if tracer is not None:
        _print_trace(tracer.to_dict())
    return 0


def _print_retrieval(retrieval: dict) -> None:
    """The candidates-before-scoring accounting of one discover call."""
    print("\nretrieval (candidates before scoring):")
    for name, report in sorted(retrieval.items()):
        shape = "exhaustive" if report["exhaustive"] else "+".join(report["channels"])
        notes = []
        if report["fallback"]:
            notes.append("exhaustive fallback")
        if report["truncated"]:
            notes.append("budget-truncated")
        suffix = f" [{', '.join(notes)}]" if notes else ""
        print(
            f"  {name}: {report['scored']}/{report['lake_size']} tables scored "
            f"({report['retrieved']} retrieved via {shape}, "
            f"{report['probes']} probes){suffix}"
        )


def _cmd_integrate(args: argparse.Namespace) -> int:
    if args.service:
        from .service import decode_table

        client = _service_client(args)
        if args.tables:
            response = client.integrate(
                tables=[read_csv(path) for path in args.tables],
                integrator=args.integrator,
                align=not args.no_align,
                trace=args.trace,
            )
        else:
            if args.query is None:
                raise SystemExit("integrate --service requires --query or --tables")
            response = client.integrate(
                query=read_csv(args.query),
                k=args.k,
                column=args.column,
                integrator=args.integrator,
                align=not args.no_align,
                trace=args.trace,
            )
        print(
            "integration set: "
            + ", ".join(response["payload"]["integration_set"])
            + f"  (lake v{response['lake_version']}"
            + (", served from cache)" if response.get("cached") else ")")
            + "\n"
        )
        _emit(decode_table(response["payload"]["table"]), args.out)
        if args.trace:
            _print_trace(response.get("trace"))
        return 0
    tracer, tracing_ctx = _maybe_trace(args.trace, "cli.integrate")
    if args.tables:
        tables = [read_csv(path) for path in args.tables]
        pipeline = Dialite(DataLake(), fd_workers=args.workers)
        with tracing_ctx:
            result = pipeline.integrate(
                tables, integrator=args.integrator, align=not args.no_align
            )
    else:
        if (args.lake is None and args.store is None) or args.query is None:
            raise SystemExit(
                "integrate requires --tables, or --lake/--store with --query"
            )
        pipeline = _load_pipeline(args)
        query = read_csv(args.query)
        names = args.discoverers.split(",") if args.discoverers else None
        with tracing_ctx:
            outcome = pipeline.discover(
                query, k=args.k, query_column=args.column, discoverer_names=names
            )
            result = pipeline.integrate(
                outcome, integrator=args.integrator, align=not args.no_align
            )
        print("integration set: " + ", ".join(t.name for t in outcome.integration_set) + "\n")
    if args.explain:
        chosen = pipeline.integrators.get(
            args.integrator or pipeline.default_integrator
        )
        _print_kernel_stats(getattr(chosen, "last_stats", None))
    display = result.to_display_table() if isinstance(result, IntegratedTable) else result
    _emit(display, args.out)
    if tracer is not None:
        _print_trace(tracer.to_dict())
    return 0


def _print_kernel_stats(stats: dict | None) -> None:
    """The FD kernel accounting of one integrate call (``--explain``)."""
    if not stats:
        print("kernel accounting: not available for this integrator\n")
        return
    print(
        f"FD kernel: {stats['input_tuples']} input tuples -> "
        f"{stats['output_tuples']} facts in {stats['components']} components "
        f"(largest {stats['largest_component']}, "
        f"{stats['all_null_tuples']} all-null), "
        f"interned domain {stats['domain']} values"
    )
    timings = [
        f"{phase} {stats[key]:.3f}s"
        for phase, key in (
            ("intern", "intern_seconds"),
            ("partition", "partition_seconds"),
            ("closure", "closure_seconds"),
            ("subsume", "subsume_seconds"),
        )
        if key in stats
    ]
    if "workers" in stats:
        timings.append(f"workers {stats['workers']} ({stats['stripes']} stripes)")
    print("  " + " | ".join(timings) + "\n")


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace <command ...>``: re-dispatch with ``--trace`` appended."""
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest or rest[0] not in ("discover", "integrate"):
        raise SystemExit(
            "trace wraps discover or integrate, "
            "e.g. repro trace discover --lake lake/ --query q.csv"
        )
    if "--trace" not in rest:
        rest.append("--trace")
    return main(rest)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import LakeServer, LakeService

    service = LakeService(
        store=args.store,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        batch_window=args.batch_window,
        default_deadline=args.deadline,
        stats_cache_capacity=args.stats_cache_capacity,
        candidate_budget=args.candidate_budget,
        fd_workers=args.fd_workers,
        trace_path=args.trace_path,
        trace_path_max_bytes=args.trace_path_max_bytes,
        postmortem_path=args.postmortem_path,
        latency_threshold_ms=args.latency_threshold_ms,
        export_path=args.export_path,
        export_interval_s=args.export_interval,
    )
    server = LakeServer(service, host=args.host, port=args.port)
    host, port = server.address
    print(
        f"serving lake store {args.store} (lake v{service.version}, "
        f"{args.workers} workers, cache {args.cache_capacity}) on {host}:{port}"
    )
    print(
        "ops: ping version health stats metrics metrics_text discover align "
        "integrate ingest shutdown"
    )
    if args.port_file:
        from pathlib import Path

        Path(args.port_file).write_text(
            f"{host} {port} {service.version}\n", encoding="utf-8"
        )
    try:
        server.run()  # blocks until a client sends shutdown (or Ctrl-C)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        server.close()
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """``repro obs export|top``: the telemetry pull surfaces."""
    from .service import ServiceClient

    client = ServiceClient(args.address)
    if args.obs_command == "export":
        if args.export_format == "prometheus":
            text = client.metrics_text()
        else:
            import json

            text = json.dumps(client.metrics(), indent=2, sort_keys=True) + "\n"
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text, encoding="utf-8")
            print(f"written: {args.out}")
        else:
            print(text, end="")
        return 0
    # top: poll health until interrupted (or --iterations polls).
    import time

    polls = 0
    try:
        while True:
            print(_render_top(client.health()))
            polls += 1
            if args.iterations is not None and polls >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _render_top(health: dict) -> str:
    """One `repro obs top` frame from a ``health`` wire payload."""
    lines = [
        f"status: {health['status']}  "
        f"lake v{health['lake_version']} epoch {health.get('lake_epoch', '?')}  "
        f"inflight {health['inflight']}/{health['workers']} workers  "
        f"respawns {health.get('worker_respawns', 0)}"
    ]
    degraded = health.get("degraded_shards") or []
    if degraded:
        lines.append(f"degraded shards (last discover): {degraded}")
    slo = health.get("slo") or {}
    firing = {entry["objective"]: entry for entry in slo.get("firing", [])}
    for name, doc in (slo.get("objectives") or {}).items():
        burns = "  ".join(f"{w}={b:g}x" for w, b in doc.get("burn", {}).items())
        mark = ""
        if name in firing:
            mark = f"  FIRING ({firing[name]['severity']})"
        lines.append(f"  slo {name} (target {doc['target']}): burn {burns}{mark}")
    shards = health.get("shards")
    if shards:
        cells = []
        for entry in shards:
            age = entry.get("last_respawn_age_s")
            suffix = "" if age is None else f" respawned {age:.0f}s ago"
            cells.append(
                f"{entry['shard']}[v{entry['version']} "
                f"{'up' if entry.get('alive') else 'DOWN'}{suffix}]"
            )
        lines.append("  shards: " + " ".join(cells))
    return "\n".join(lines)


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import pipeline_report

    if args.lake is None and args.store is None:
        raise SystemExit("report requires --lake or --store")
    pipeline = _load_pipeline(args)
    query = read_csv(args.query)
    names = args.discoverers.split(",") if args.discoverers else None
    result = pipeline.run(
        query,
        k=args.k,
        query_column=args.column,
        integrator=args.integrator,
        analyses={"describe": {}},
    )
    del names  # run() always uses the full roster; subsets are a discover concern
    markdown = pipeline_report(result, title=f"DIALITE run: {query.name}")
    print(markdown)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(markdown, encoding="utf-8")
        print(f"written: {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    table = read_csv(args.table)
    pipeline = Dialite(DataLake())
    options = _parse_options(args.option)
    result = pipeline.analyze(table, args.app, **options)
    _print_analysis(result)
    return 0


def _print_analysis(result: Any) -> None:
    if isinstance(result, Table):
        print(result.to_pretty(50))
        return
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, Table):
                print(f"{key}:")
                print(value.to_pretty(50))
            else:
                print(f"{key}: {value}")
        return
    entities = getattr(result, "entities", None)
    if entities is not None:  # an ERResult
        print(f"{result.num_entities} entities from {len(result.records)} rows")
        print(entities.to_pretty(50))
        return
    print(result)


_COMMANDS = {
    "lake-info": _cmd_lake_info,
    "profile": _cmd_profile,
    "generate": _cmd_generate,
    "index": _cmd_index,
    "store": _cmd_store,
    "discover": _cmd_discover,
    "integrate": _cmd_integrate,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "analyze": _cmd_analyze,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
