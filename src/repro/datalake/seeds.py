"""Seed vocabularies: the raw material for synthetic lakes and the seed KB.

Everything the offline reproduction needs in place of real open-data content
lives here: entity vocabularies with aliases (so "USA" and "United States"
are knowably the same country), and thematic attribute generators.  The
synthetic-lake generator (:mod:`repro.datalake.synth`) samples from these;
the seed knowledge base (:mod:`repro.discovery.kb`) ingests them as typed
entities; entity resolution uses the alias groups as its gazetteer.
"""

from __future__ import annotations

__all__ = [
    "COUNTRIES",
    "CITIES",
    "VACCINES",
    "AGENCIES",
    "COMPANIES",
    "FIRST_NAMES",
    "LAST_NAMES",
    "US_STATES",
    "SPORTS",
    "CUISINES",
    "SCHOOL_SUBJECTS",
    "ALIAS_GROUPS",
    "entity_vocabularies",
]

#: country -> aliases (the first form is canonical).
COUNTRIES: dict[str, tuple[str, ...]] = {
    "United States": ("USA", "US", "United States of America"),
    "United Kingdom": ("UK", "Great Britain", "Britain"),
    "Germany": ("Deutschland", "DE"),
    "France": ("FR",),
    "Spain": ("ES", "España"),
    "Italy": ("IT", "Italia"),
    "Canada": ("CA",),
    "Mexico": ("MX", "México"),
    "Brazil": ("BR", "Brasil"),
    "Argentina": ("AR",),
    "India": ("IN", "Bharat"),
    "China": ("CN", "PRC"),
    "Japan": ("JP", "Nippon"),
    "South Korea": ("KR", "Korea", "Republic of Korea"),
    "Australia": ("AU",),
    "Netherlands": ("NL", "Holland"),
    "Switzerland": ("CH",),
    "Sweden": ("SE",),
    "Norway": ("NO",),
    "Poland": ("PL",),
    "Portugal": ("PT",),
    "Greece": ("GR", "Hellas"),
    "Turkey": ("TR", "Türkiye"),
    "Egypt": ("EG",),
    "South Africa": ("ZA", "RSA"),
    "Nigeria": ("NG",),
    "Kenya": ("KE",),
    "Russia": ("RU", "Russian Federation"),
    "Ukraine": ("UA",),
    "England": ("ENG",),
}

#: city -> country it belongs to (used to seed (city, country) relations).
CITIES: dict[str, str] = {
    "Berlin": "Germany",
    "Munich": "Germany",
    "Hamburg": "Germany",
    "Manchester": "England",
    "London": "England",
    "Liverpool": "England",
    "Barcelona": "Spain",
    "Madrid": "Spain",
    "Seville": "Spain",
    "Toronto": "Canada",
    "Vancouver": "Canada",
    "Montreal": "Canada",
    "Mexico City": "Mexico",
    "Guadalajara": "Mexico",
    "Boston": "United States",
    "New York": "United States",
    "Chicago": "United States",
    "Seattle": "United States",
    "San Francisco": "United States",
    "Austin": "United States",
    "New Delhi": "India",
    "Mumbai": "India",
    "Bangalore": "India",
    "Paris": "France",
    "Lyon": "France",
    "Rome": "Italy",
    "Milan": "Italy",
    "Tokyo": "Japan",
    "Osaka": "Japan",
    "Seoul": "South Korea",
    "Sydney": "Australia",
    "Melbourne": "Australia",
    "Amsterdam": "Netherlands",
    "Zurich": "Switzerland",
    "Stockholm": "Sweden",
    "Oslo": "Norway",
    "Warsaw": "Poland",
    "Lisbon": "Portugal",
    "Athens": "Greece",
    "Istanbul": "Turkey",
    "Cairo": "Egypt",
    "Cape Town": "South Africa",
    "Lagos": "Nigeria",
    "Nairobi": "Kenya",
    "Moscow": "Russia",
    "Kyiv": "Ukraine",
    "Sao Paulo": "Brazil",
    "Buenos Aires": "Argentina",
    "Beijing": "China",
    "Shanghai": "China",
}

#: vaccine -> (aliases, manufacturer country, typical approver).
VACCINES: dict[str, tuple[tuple[str, ...], str, str]] = {
    "Pfizer": (("Pfizer-BioNTech", "Comirnaty", "BNT162b2"), "United States", "FDA"),
    "Moderna": (("Spikevax", "mRNA-1273"), "United States", "FDA"),
    "Johnson & Johnson": (("J&J", "JnJ", "Janssen"), "United States", "FDA"),
    "AstraZeneca": (("Vaxzevria", "AZD1222", "Covishield"), "United Kingdom", "EMA"),
    "Novavax": (("Nuvaxovid", "NVX-CoV2373"), "United States", "FDA"),
    "Sinovac": (("CoronaVac",), "China", "NMPA"),
    "Sinopharm": (("BBIBP-CorV",), "China", "NMPA"),
    "Sputnik V": (("Gam-COVID-Vac",), "Russia", "MoH Russia"),
    "Covaxin": (("BBV152",), "India", "CDSCO"),
}

#: regulatory agency -> aliases.
AGENCIES: dict[str, tuple[str, ...]] = {
    "FDA": ("Food and Drug Administration", "US FDA"),
    "EMA": ("European Medicines Agency",),
    "MHRA": ("Medicines and Healthcare products Regulatory Agency",),
    "NMPA": ("National Medical Products Administration",),
    "CDSCO": ("Central Drugs Standard Control Organisation",),
    "WHO": ("World Health Organization",),
    "Health Canada": ("HC",),
    "TGA": ("Therapeutic Goods Administration",),
    "MoH Russia": ("Ministry of Health of Russia",),
}

#: company -> aliases (for business-themed synthetic tables).
COMPANIES: dict[str, tuple[str, ...]] = {
    "Acme Corporation": ("Acme Corp", "Acme"),
    "Globex": ("Globex Corporation",),
    "Initech": (),
    "Umbrella": ("Umbrella Corp",),
    "Stark Industries": ("Stark",),
    "Wayne Enterprises": ("Wayne",),
    "Wonka Industries": ("Wonka",),
    "Tyrell": ("Tyrell Corporation",),
    "Cyberdyne": ("Cyberdyne Systems",),
    "Hooli": (),
    "Pied Piper": (),
    "Vandelay": ("Vandelay Industries",),
}

FIRST_NAMES: tuple[str, ...] = (
    "Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Hector",
    "Irene", "James", "Karen", "Luis", "Maria", "Nikhil", "Olivia", "Pedro",
    "Quinn", "Rosa", "Samir", "Tanya", "Uma", "Victor", "Wendy", "Xavier",
    "Yara", "Zoe",
)

LAST_NAMES: tuple[str, ...] = (
    "Anderson", "Brown", "Chen", "Diaz", "Evans", "Fischer", "Garcia",
    "Hansen", "Ivanov", "Johnson", "Kim", "Lopez", "Miller", "Nguyen",
    "O'Brien", "Patel", "Quist", "Rossi", "Smith", "Tanaka", "Ueda",
    "Vargas", "Williams", "Xu", "Yamamoto", "Zhang",
)

US_STATES: dict[str, tuple[str, ...]] = {
    "Massachusetts": ("MA",),
    "New York": ("NY",),
    "California": ("CA",),
    "Texas": ("TX",),
    "Washington": ("WA",),
    "Illinois": ("IL",),
    "Florida": ("FL",),
    "Oregon": ("OR",),
    "Colorado": ("CO",),
    "Georgia": ("GA",),
}

SPORTS: tuple[str, ...] = (
    "Soccer", "Basketball", "Tennis", "Cricket", "Baseball", "Hockey",
    "Rugby", "Golf", "Swimming", "Cycling",
)

CUISINES: tuple[str, ...] = (
    "Italian", "Mexican", "Japanese", "Indian", "Thai", "French",
    "Ethiopian", "Greek", "Korean", "Vietnamese",
)

SCHOOL_SUBJECTS: tuple[str, ...] = (
    "Mathematics", "Physics", "Chemistry", "Biology", "History",
    "Geography", "Literature", "Computer Science", "Economics", "Art",
)


def _alias_groups() -> list[tuple[str, ...]]:
    groups: list[tuple[str, ...]] = []
    for canonical, aliases in COUNTRIES.items():
        groups.append((canonical, *aliases))
    for canonical, (aliases, _, _) in VACCINES.items():
        groups.append((canonical, *aliases))
    for canonical, aliases in AGENCIES.items():
        groups.append((canonical, *aliases))
    for canonical, aliases in COMPANIES.items():
        if aliases:
            groups.append((canonical, *aliases))
    for canonical, aliases in US_STATES.items():
        groups.append((canonical, *aliases))
    return groups


#: Alias groups: each tuple lists surface forms of one real-world entity,
#: canonical form first.  This is the ER gazetteer.
ALIAS_GROUPS: list[tuple[str, ...]] = _alias_groups()


def entity_vocabularies() -> dict[str, list[str]]:
    """``{semantic type: [canonical surface forms]}`` for the seed KB."""
    return {
        "country": list(COUNTRIES),
        "city": list(CITIES),
        "vaccine": list(VACCINES),
        "agency": list(AGENCIES),
        "company": list(COMPANIES),
        "first_name": list(FIRST_NAMES),
        "last_name": list(LAST_NAMES),
        "us_state": list(US_STATES),
        "sport": list(SPORTS),
        "cuisine": list(CUISINES),
        "school_subject": list(SCHOOL_SUBJECTS),
    }
