"""The paper's worked-example tables, transcribed exactly.

Figures 2/3 (COVID cases, tables T1-T3) and Figures 7/8 (COVID vaccines,
tables T4-T6) of the DIALITE paper, including the input missing nulls
(``±``).  These drive the exactness tests and benchmarks E1-E4 and the
examples; see EXPERIMENTS.md for the expected outputs.
"""

from __future__ import annotations

from ..table.table import Table
from ..table.values import MISSING

__all__ = [
    "covid_query_table",
    "covid_unionable_table",
    "covid_joinable_table",
    "covid_integration_set",
    "vaccine_integration_set",
]


def covid_query_table() -> Table:
    """T1, the query table of Example 1 (tuples t1-t3)."""
    return Table(
        ["Country", "City", "Vaccination Rate"],
        [
            ("Germany", "Berlin", "63%"),
            ("England", "Manchester", "78%"),
            ("Spain", "Barcelona", "82%"),
        ],
        name="T1",
    )


def covid_unionable_table() -> Table:
    """T2, the retrieved unionable table (tuples t4-t6; t5 has a missing
    vaccination rate, the ``±`` of Figure 2)."""
    return Table(
        ["Country", "City", "Vaccination Rate"],
        [
            ("Canada", "Toronto", "83%"),
            ("Mexico", "Mexico City", MISSING),
            ("USA", "Boston", "62%"),
        ],
        name="T2",
    )


def covid_joinable_table() -> Table:
    """T3, the retrieved joinable table (tuples t7-t10)."""
    return Table(
        ["City", "Total Cases", "Death Rate"],
        [
            ("Berlin", "1.4M", 147),
            ("Barcelona", "2.68M", 275),
            ("Boston", "263k", 335),
            ("New Delhi", "2M", 158),
        ],
        name="T3",
    )


def covid_integration_set() -> list[Table]:
    """The Example 2 integration set: [T1, T2, T3]."""
    return [covid_query_table(), covid_unionable_table(), covid_joinable_table()]


def vaccine_integration_set() -> list[Table]:
    """T4, T5, T6 of Figure 7 (tuples t11-t16), with their missing nulls.

    T4(Vaccine, Approver), T5(Country, Approver), T6(Vaccine, Country).
    """
    t4 = Table(
        ["Vaccine", "Approver"],
        [
            ("Pfizer", "FDA"),
            ("JnJ", MISSING),
        ],
        name="T4",
    )
    t5 = Table(
        ["Country", "Approver"],
        [
            ("United States", "FDA"),
            ("USA", MISSING),
        ],
        name="T5",
    )
    t6 = Table(
        ["Vaccine", "Country"],
        [
            ("J&J", "United States"),
            ("JnJ", "USA"),
        ],
        name="T6",
    )
    return [t4, t5, t6]
