"""Lake profiling: the statistics a discovery deployment keeps per column.

``profile_lake`` walks a lake once and emits a per-column statistics table:
inferred dtype, null share, estimated distinct count (HyperLogLog -- exact
at this scale, but the sketch is what survives lake scale), numeric
fraction and example values.  The CLI's ``profile`` command prints it; the
synthetic-lake tests use it to sanity-check generated data.

Everything reported here is read from the shared
:class:`~repro.table.stats.ColumnStats` cache: the profiler performs no raw
column scans of its own, and the HyperLogLog it reports is the very sketch
the discovery indexes use -- profiling after (or before) index building is
free of duplicate work.
"""

from __future__ import annotations

from typing import Mapping

from ..table.table import Table

__all__ = ["profile_lake", "profile_table"]

_PROFILE_HEADER = [
    "table", "column", "dtype", "rows", "non_null", "distinct_est",
    "numeric_frac", "examples",
]


def profile_table(table: Table, hll_precision: int = 12) -> Table:
    """Per-column statistics for one table (served from the stats cache)."""
    rows = []
    for stats in table.stats:
        rows.append(
            (
                table.name,
                stats.name,
                stats.dtype,
                stats.row_count,
                stats.non_null_count,
                len(stats.hll(hll_precision)),
                round(stats.numeric_fraction, 3),
                ", ".join(stats.example_values(3)),
            )
        )
    return Table(_PROFILE_HEADER, rows, name=f"{table.name}_profile")


def profile_lake(lake: Mapping[str, Table], hll_precision: int = 12) -> Table:
    """Per-column statistics for every table in *lake*, stacked."""
    rows: list[tuple] = []
    for table in lake.values():
        rows.extend(profile_table(table, hll_precision).rows)
    return Table(_PROFILE_HEADER, rows, name="lake_profile")
