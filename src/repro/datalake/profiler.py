"""Lake profiling: the statistics a discovery deployment keeps per column.

``profile_lake`` walks a lake once and emits a per-column statistics table:
inferred dtype, null share, estimated distinct count (HyperLogLog -- exact
at this scale, but the sketch is what survives lake scale), numeric
fraction and example values.  The CLI's ``profile`` command prints it; the
synthetic-lake tests use it to sanity-check generated data.
"""

from __future__ import annotations

from typing import Mapping

from ..sketch.hll import HyperLogLog
from ..table.table import Table
from ..table.values import is_null
from ..text.normalize import numeric_fraction

__all__ = ["profile_lake", "profile_table"]


def profile_table(table: Table, hll_precision: int = 12) -> Table:
    """Per-column statistics for one table."""
    rows = []
    for spec in table.schema:
        values = table.column(spec.name)
        non_null = [v for v in values if not is_null(v)]
        sketch = HyperLogLog(precision=hll_precision)
        for value in non_null:
            sketch.add(value)
        distinct_examples = list(dict.fromkeys(str(v) for v in non_null))[:3]
        rows.append(
            (
                table.name,
                spec.name,
                spec.dtype,
                len(values),
                len(non_null),
                len(sketch),
                round(numeric_fraction(non_null), 3),
                ", ".join(distinct_examples),
            )
        )
    return Table(
        ["table", "column", "dtype", "rows", "non_null", "distinct_est",
         "numeric_frac", "examples"],
        rows,
        name=f"{table.name}_profile",
    )


def profile_lake(lake: Mapping[str, Table], hll_precision: int = 12) -> Table:
    """Per-column statistics for every table in *lake*, stacked."""
    header = ["table", "column", "dtype", "rows", "non_null", "distinct_est",
              "numeric_frac", "examples"]
    rows: list[tuple] = []
    for table in lake.values():
        rows.extend(profile_table(table, hll_precision).rows)
    return Table(header, rows, name="lake_profile")
