"""Offline index building over a data lake (paper Sec. 3.1).

The demo pre-builds the SANTOS and LSH Ensemble indexes so users query a
ready lake; :class:`LakeIndex` is that offline step: it fits every
configured discoverer against the lake, records per-discoverer build times,
and then serves fan-out searches.

The index owns two shared substrates.  The lake-wide
:class:`~repro.datalake.stats.LakeStats` cache gives every fit the same
memoized tokens / distinct sets / sketches (one raw pass per column), and
the :class:`~repro.candidates.CandidateEngine` gives every *search* the
same sublinear retrieval structures (inverted postings, sketch bands,
label namespaces) -- ``build`` constructs one engine and threads it
through all fits, and ``search`` profiles the query table once before
fanning out, so a fan-out over D discoverers performs one query-stat
pass and D candidate retrievals instead of D full-lake scans.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import Mapping, Sequence

from ..candidates.engine import CandidateEngine
from ..discovery.base import Discoverer, DiscoveryResult, merge_result_sets
from ..table.table import Table
from .stats import LakeStats

__all__ = ["LakeIndex"]


class LakeIndex:
    """A set of fitted discoverers over one lake, sharing one stats cache
    and one candidate engine."""

    def __init__(self, lake: Mapping[str, Table], discoverers: Sequence[Discoverer]):
        names = [d.name for d in discoverers]
        if len(set(names)) != len(names):
            raise ValueError(f"discoverer names must be unique: {names}")
        self._lake = lake
        self._discoverers = list(discoverers)
        self._build_seconds: dict[str, float] = {}
        self._built = False
        self._engine: CandidateEngine | None = None

    @property
    def discoverers(self) -> list[Discoverer]:
        return list(self._discoverers)

    @property
    def stats(self) -> LakeStats:
        """The shared per-column statistics of the indexed lake.

        A lake that carries its own stats view (``DataLake.stats`` -- in
        particular a stored lake's hydrated, non-materializing view) is
        deferred to; a plain mapping gets the generic live view."""
        own = getattr(self._lake, "stats", None)
        if isinstance(own, LakeStats):
            return own
        return LakeStats(self._lake)

    @property
    def engine(self) -> CandidateEngine:
        """The shared candidate engine (created by :meth:`build`)."""
        if self._engine is None:
            self._engine = CandidateEngine(self._lake, stats=self.stats)
        return self._engine

    def set_candidate_budget(self, budget: int | None) -> "LakeIndex":
        """Engine-wide candidate-budget default (the CLI's
        ``--candidate-budget``); None restores unbudgeted retrieval."""
        self.engine.default_budget = budget
        return self

    def _roster_channels(self) -> set[str]:
        return {c for d in self._discoverers for c in d.candidate_spec().channels}

    @property
    def build_seconds(self) -> dict[str, float]:
        """Per-discoverer offline index-build wall time."""
        return dict(self._build_seconds)

    @property
    def is_built(self) -> bool:
        return self._built

    def build(self) -> "LakeIndex":
        """Fit every discoverer (idempotent); returns self."""
        self.stats.warm()  # one raw pass per column, shared by all fits
        engine = self.engine
        engine.warm(self._roster_channels())  # postings built once, offline
        for discoverer in self._discoverers:
            start = time.perf_counter()
            discoverer.fit(self._lake, engine=engine)
            self._build_seconds[discoverer.name] = time.perf_counter() - start
        self._built = True
        return self

    def search(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
        discoverer_names: Sequence[str] | None = None,
    ) -> dict[str, list[DiscoveryResult]]:
        """Top-k per discoverer (build first if needed).

        The query table is profiled exactly once per fan-out: its column
        stats warm here, and every discoverer's retrieval and scoring
        phases read the same memoized tokens / values / signatures.
        """
        if not self._built:
            self.build()
        chosen = self._discoverers
        if discoverer_names is not None:
            by_name = {d.name: d for d in self._discoverers}
            missing = sorted(set(discoverer_names) - set(by_name))
            if missing:
                raise KeyError(f"unknown discoverers: {missing}; have {sorted(by_name)}")
            chosen = [by_name[name] for name in discoverer_names]
        query.stats.warm()  # one scoped profiling pass, shared by the fan-out
        return {
            discoverer.name: discoverer.search(query, k=k, query_column=query_column)
            for discoverer in chosen
        }

    def search_merged(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
    ) -> list[DiscoveryResult]:
        """The union of all discoverers' result sets (the integration set
        construction of Sec. 3.1)."""
        per_discoverer = self.search(query, k=k, query_column=query_column)
        return merge_result_sets(list(per_discoverer.values()))

    def retrieval_reports(self) -> dict[str, dict]:
        """Per-discoverer last-retrieval summaries (``discover --explain``)."""
        if self._engine is None:
            return {}
        return self._engine.explain()

    # ------------------------------------------------------------------
    # Warm start from a persistent lake store (repro.store)
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store,
        discoverers: Sequence[Discoverer] | None = None,
        lake: Mapping[str, Table] | None = None,
    ) -> "LakeIndex":
        """A ready-to-search index hydrated from a :class:`~repro.store.LakeStore`.

        *store* may be a ``LakeStore`` or a path to one.  Persisted fitted
        discoverer indexes (saved by ``LakeStore.save_indexes`` at the
        store's current lake version) are unpickled and used as-is; any
        requested discoverer without a persisted index is fitted against
        the store's hydrated lake -- whose statistics snapshots make that
        fit free of raw-cell re-scans.  With ``discoverers=None`` the
        persisted roster is used verbatim (an error if none exist: nothing
        was ever built to warm-start from).

        The candidate engine hydrates from the store's version-pinned
        postings artifact when one exists, so a warm start performs zero
        posting-index rebuild; otherwise a fresh engine builds lazily
        from the hydrated stats snapshots (still zero raw-cell scans).

        *lake* lets a caller thread its own (already opened) stored lake
        through, so the index and the caller share table objects and one
        scan ledger; by default the store's lazy lake view is used.
        """
        from ..store.lakestore import LakeStore, StoreError

        if not isinstance(store, LakeStore):
            store = LakeStore.open(store)
        if lake is None:
            lake = store.lake()
        persisted = store.load_indexes()
        if discoverers is None:
            if not persisted:
                raise StoreError(
                    f"store at {store.path} has no persisted discoverer indexes "
                    f"for lake version {store.lake_version}; run an index build "
                    f"first or pass explicit discoverers"
                )
            roster = list(persisted.values())
        else:
            roster = [persisted.get(d.name, d) for d in discoverers]
        index = cls(lake, roster)
        index._engine = store.load_engine(lake=lake, stats=index.stats)
        engine = index.engine  # builds a cold engine when no artifact exists
        recorded = store.index_build_seconds()
        for discoverer in roster:
            if discoverer.is_fitted:
                _rebind_lake(discoverer, lake)
                discoverer.bind_engine(engine)
                index._build_seconds[discoverer.name] = recorded.get(discoverer.name, 0.0)
            else:
                start = time.perf_counter()
                discoverer.fit(lake, engine=engine)
                index._build_seconds[discoverer.name] = time.perf_counter() - start
        index._built = True
        return index

    def save_to_store(self, store) -> None:
        """Persist every fitted discoverer index *and* the engine's posting
        structures into a :class:`~repro.store.LakeStore` (building first
        if needed), pinned to the store's current lake version for
        staleness detection."""
        if not self._built:
            self.build()
        store.save_indexes(self._discoverers, self._build_seconds)
        store.save_engine(self.engine, channels=self._roster_channels())

    # ------------------------------------------------------------------
    # Persistence: the demo's "indexes are built offline" workflow
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Pickle the fitted index (lake snapshot included) to *path*.

        Standard discoverers pickle cleanly; a
        :class:`~repro.discovery.custom.FunctionDiscoverer` wrapping a
        lambda will not -- register such discoverers after loading instead.
        """
        if not self._built:
            self.build()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump(self, handle)

    @classmethod
    def load(cls, path: str | Path) -> "LakeIndex":
        """Load a previously saved index; it is ready to search."""
        with Path(path).open("rb") as handle:
            index = pickle.load(handle)
        if not isinstance(index, cls):
            raise TypeError(f"{path} does not contain a LakeIndex (got {type(index).__name__})")
        engine = index.engine
        for discoverer in index._discoverers:
            _rebind_lake(discoverer, index._lake)
            discoverer.bind_engine(engine)
        return index


def _rebind_lake(discoverer: Discoverer, lake: Mapping[str, Table]) -> None:
    """Re-attach a lake to an unpickled discoverer that dropped it from its
    pickle to avoid duplicating cell data (e.g. COCOA's ``rebind_lake``)."""
    rebind = getattr(discoverer, "rebind_lake", None)
    if rebind is not None:
        rebind(lake)
