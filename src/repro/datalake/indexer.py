"""Offline index building over a data lake (paper Sec. 3.1).

The demo pre-builds the SANTOS and LSH Ensemble indexes so users query a
ready lake; :class:`LakeIndex` is that offline step: it fits every
configured discoverer against the lake, records per-discoverer build times,
and then serves fan-out searches.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import Mapping, Sequence

from ..discovery.base import Discoverer, DiscoveryResult, merge_result_sets
from ..table.table import Table
from .stats import LakeStats

__all__ = ["LakeIndex"]


class LakeIndex:
    """A set of fitted discoverers over one lake.

    The index owns the lake-wide :class:`~repro.datalake.stats.LakeStats`
    view: ``build`` warms it once (one raw pass per column), after which
    every discoverer's ``fit`` reads tokens / distinct sets / sketches from
    the shared cache instead of re-scanning the lake per algorithm.
    """

    def __init__(self, lake: Mapping[str, Table], discoverers: Sequence[Discoverer]):
        names = [d.name for d in discoverers]
        if len(set(names)) != len(names):
            raise ValueError(f"discoverer names must be unique: {names}")
        self._lake = lake
        self._discoverers = list(discoverers)
        self._build_seconds: dict[str, float] = {}
        self._built = False

    @property
    def discoverers(self) -> list[Discoverer]:
        return list(self._discoverers)

    @property
    def stats(self) -> LakeStats:
        """The shared per-column statistics of the indexed lake."""
        return LakeStats(self._lake)

    @property
    def build_seconds(self) -> dict[str, float]:
        """Per-discoverer offline index-build wall time."""
        return dict(self._build_seconds)

    @property
    def is_built(self) -> bool:
        return self._built

    def build(self) -> "LakeIndex":
        """Fit every discoverer (idempotent); returns self."""
        self.stats.warm()  # one raw pass per column, shared by all fits
        for discoverer in self._discoverers:
            start = time.perf_counter()
            discoverer.fit(self._lake)
            self._build_seconds[discoverer.name] = time.perf_counter() - start
        self._built = True
        return self

    def search(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
        discoverer_names: Sequence[str] | None = None,
    ) -> dict[str, list[DiscoveryResult]]:
        """Top-k per discoverer (build first if needed)."""
        if not self._built:
            self.build()
        chosen = self._discoverers
        if discoverer_names is not None:
            by_name = {d.name: d for d in self._discoverers}
            missing = sorted(set(discoverer_names) - set(by_name))
            if missing:
                raise KeyError(f"unknown discoverers: {missing}; have {sorted(by_name)}")
            chosen = [by_name[name] for name in discoverer_names]
        return {
            discoverer.name: discoverer.search(query, k=k, query_column=query_column)
            for discoverer in chosen
        }

    def search_merged(
        self,
        query: Table,
        k: int = 10,
        query_column: str | None = None,
    ) -> list[DiscoveryResult]:
        """The union of all discoverers' result sets (the integration set
        construction of Sec. 3.1)."""
        per_discoverer = self.search(query, k=k, query_column=query_column)
        return merge_result_sets(list(per_discoverer.values()))

    # ------------------------------------------------------------------
    # Persistence: the demo's "indexes are built offline" workflow
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Pickle the fitted index (lake snapshot included) to *path*.

        Standard discoverers pickle cleanly; a
        :class:`~repro.discovery.custom.FunctionDiscoverer` wrapping a
        lambda will not -- register such discoverers after loading instead.
        """
        if not self._built:
            self.build()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump(self, handle)

    @classmethod
    def load(cls, path: str | Path) -> "LakeIndex":
        """Load a previously saved index; it is ready to search."""
        with Path(path).open("rb") as handle:
            index = pickle.load(handle)
        if not isinstance(index, cls):
            raise TypeError(f"{path} does not contain a LakeIndex (got {type(index).__name__})")
        return index
