"""Synthetic open-data lakes with ground truth.

The public benchmarks DIALITE demonstrates on (SANTOS benchmark, TUS
benchmark) are multi-GB downloads; offline we generate lakes with the same
*structure*: a query table, tables genuinely unionable with it (same
concept, disjoint rows, possibly renamed headers), tables genuinely joinable
with it (overlapping key domains, new attributes), and thematic distractors.
Because the generator knows which is which, discovery quality (P@k / R@k,
experiment E10) is measurable, not eyeballed.

A second generator builds *integration sets* for FD scaling experiments
(E8): vertical fragments of one wide fact table that agree on a key column,
with controllable table count, row count, attribute overlap and null rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..table.table import Table
from ..table.values import MISSING, Cell
from . import seeds
from .catalog import DataLake

__all__ = [
    "GroundTruth",
    "SyntheticLake",
    "SyntheticLakeBuilder",
    "build_integration_set",
    "perturb_string",
]

#: Header synonyms used to simulate the unreliable metadata of open data.
HEADER_SYNONYMS: dict[str, tuple[str, ...]] = {
    "City": ("Municipality", "Town", "city_name", "Urban Area"),
    "Country": ("Nation", "country_name", "Country/Region"),
    "Vaccination Rate": ("Vax Rate", "Pct Vaccinated", "vaccination_pct"),
    "Total Cases": ("Cases", "Case Count", "total_cases"),
    "Death Rate": ("Deaths per 100k", "death_rate", "Mortality"),
    "Population": ("Residents", "population", "Pop."),
    "Hospitalizations": ("Hospitalized", "hosp_count"),
}


def perturb_string(value: str, rng: random.Random, rate: float) -> str:
    """With probability *rate*, apply one small edit (case flip, dropped
    character, or doubled character) -- open-data typo noise."""
    if not value or rng.random() >= rate:
        return value
    kind = rng.randrange(3)
    position = rng.randrange(len(value))
    if kind == 0:
        char = value[position]
        flipped = char.lower() if char.isupper() else char.upper()
        return value[:position] + flipped + value[position + 1 :]
    if kind == 1 and len(value) > 2:
        return value[:position] + value[position + 1 :]
    return value[:position] + value[position] + value[position:]


@dataclass(frozen=True)
class GroundTruth:
    """Which lake tables are truly related to the query, and how."""

    unionable: frozenset[str]
    joinable: frozenset[str]
    distractors: frozenset[str]

    def relevant(self) -> frozenset[str]:
        """Everything truly related to the query: unionable + joinable."""
        return self.unionable | self.joinable


@dataclass
class SyntheticLake:
    """A generated benchmark instance."""

    query: Table
    lake: DataLake
    truth: GroundTruth
    seed: int = 0


@dataclass
class SyntheticLakeBuilder:
    """Seeded generator of query-anchored lakes.

    Two themes:

    * ``"covid"`` (default) mirrors the paper's running example: the query
      holds (City, Country, Vaccination Rate); unionable tables repeat that
      concept over other cities; joinable tables key on overlapping cities
      and add case/death/population attributes;
    * ``"business"`` anchors on (Company, City, Revenue) with joinable
      tables adding employees/founding data keyed on company names.

    Distractors come from unrelated topics via :mod:`repro.genquery`.
    """

    seed: int = 0
    rows_per_table: int = 12
    null_rate: float = 0.05
    header_synonym_rate: float = 0.3
    typo_rate: float = 0.0
    join_key_overlap: float = 0.6
    theme: str = "covid"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.theme not in ("covid", "business"):
            raise ValueError(f"unknown theme {self.theme!r}; use 'covid' or 'business'")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def build(
        self,
        num_unionable: int = 4,
        num_joinable: int = 4,
        num_distractors: int = 8,
    ) -> SyntheticLake:
        """Generate one lake; deterministic for a fixed builder config."""
        if self.theme == "business":
            keys = list(seeds.COMPANIES)
            anchor_table = self._business_table
            stats_table = self._company_stats_table
        else:
            keys = list(seeds.CITIES)
            anchor_table = self._covid_table
            stats_table = self._stats_table
        self._rng.shuffle(keys)
        rows = min(self.rows_per_table, max(2, len(keys) // 2))
        query_keys = keys[:rows]
        other_keys = keys[rows:]

        query = anchor_table("query", query_keys)
        tables: list[Table] = []
        unionable: set[str] = set()
        joinable: set[str] = set()
        distractors: set[str] = set()

        for i in range(num_unionable):
            pool = other_keys if other_keys else query_keys
            chosen = [pool[(i * 3 + j) % len(pool)] for j in range(rows)]
            table = anchor_table(f"union_{i}", chosen, synonyms=True)
            tables.append(table)
            unionable.add(table.name)

        for i in range(num_joinable):
            overlap_count = max(1, int(self.join_key_overlap * rows))
            shared = self._rng.sample(query_keys, min(overlap_count, len(query_keys)))
            fresh_pool = other_keys if other_keys else query_keys
            fresh = [
                fresh_pool[(i * 5 + j) % len(fresh_pool)]
                for j in range(rows - len(shared))
            ]
            table = stats_table(f"join_{i}", shared + fresh)
            tables.append(table)
            joinable.add(table.name)

        from ..genquery import generate_query_table

        topics = ("people", "restaurant", "school", "sport")
        for i in range(num_distractors):
            topic = topics[i % len(topics)]
            table = generate_query_table(
                f"a table about {topic}",
                rows=self.rows_per_table,
                seed=self.seed * 1000 + i,
                name=f"distractor_{i}",
            )
            tables.append(table)
            distractors.add(table.name)

        return SyntheticLake(
            query=query,
            lake=DataLake.from_tables(tables),
            truth=GroundTruth(
                unionable=frozenset(unionable),
                joinable=frozenset(joinable),
                distractors=frozenset(distractors),
            ),
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def _covid_table(self, name: str, cities: list[str], synonyms: bool = False) -> Table:
        header = ["City", "Country", "Vaccination Rate"]
        if synonyms:
            header = [self._maybe_synonym(h) for h in header]
        rows = []
        for city in cities:
            country = seeds.CITIES[city]
            rows.append(
                (
                    self._noise(city),
                    self._noise(country),
                    self._maybe_null(f"{self._rng.randint(30, 95)}%"),
                )
            )
        return Table(header, rows, name=name)

    def _stats_table(self, name: str, cities: list[str]) -> Table:
        attributes = ["Total Cases", "Death Rate", "Population", "Hospitalizations"]
        count = self._rng.randint(2, 3)
        chosen = self._rng.sample(attributes, count)
        header = [self._maybe_synonym("City")] + [self._maybe_synonym(a) for a in chosen]
        rows = []
        for city in cities:
            cells: list[Cell] = [self._noise(city)]
            for attribute in chosen:
                if attribute == "Total Cases":
                    cells.append(self._maybe_null(f"{self._rng.randint(50, 3000)}k"))
                elif attribute == "Death Rate":
                    cells.append(self._maybe_null(self._rng.randint(40, 400)))
                elif attribute == "Population":
                    cells.append(self._maybe_null(f"{round(self._rng.uniform(0.1, 20), 1)}M"))
                else:
                    cells.append(self._maybe_null(self._rng.randint(100, 90000)))
            rows.append(tuple(cells))
        return Table(header, rows, name=name)

    def _business_table(self, name: str, companies: list[str], synonyms: bool = False) -> Table:
        header = ["Company", "City", "Revenue"]
        if synonyms and self._rng.random() < self.header_synonym_rate:
            header = ["Business", "Location", "Annual Revenue"]
        rows = []
        for company in companies:
            rows.append(
                (
                    self._noise(company),
                    self._noise(self._rng.choice(list(seeds.CITIES))),
                    self._maybe_null(f"${self._rng.randint(1, 900)}M"),
                )
            )
        return Table(header, rows, name=name)

    def _company_stats_table(self, name: str, companies: list[str]) -> Table:
        attributes = ["Employees", "Founded", "Offices"]
        count = self._rng.randint(2, 3)
        chosen = self._rng.sample(attributes, count)
        header = ["Company"] + chosen
        rows = []
        for company in companies:
            cells: list[Cell] = [self._noise(company)]
            for attribute in chosen:
                if attribute == "Employees":
                    cells.append(self._maybe_null(self._rng.randint(10, 250_000)))
                elif attribute == "Founded":
                    cells.append(self._maybe_null(self._rng.randint(1900, 2022)))
                else:
                    cells.append(self._maybe_null(self._rng.randint(1, 400)))
            rows.append(tuple(cells))
        return Table(header, rows, name=name)

    def _maybe_synonym(self, header: str) -> str:
        options = HEADER_SYNONYMS.get(header)
        if options and self._rng.random() < self.header_synonym_rate:
            return self._rng.choice(options)
        return header

    def _maybe_null(self, value: Cell) -> Cell:
        return MISSING if self._rng.random() < self.null_rate else value

    def _noise(self, value: str) -> str:
        return perturb_string(value, self._rng, self.typo_rate)


def build_integration_set(
    num_tables: int = 5,
    rows_per_table: int = 50,
    num_attributes: int = 8,
    attributes_per_table: int = 3,
    key_pool_size: int = 80,
    null_rate: float = 0.08,
    seed: int = 0,
) -> list[Table]:
    """Vertical fragments of a wide fact table, for FD scaling experiments.

    Each table has a shared ``Key`` column (integration IDs pre-assigned, so
    integrators run without an alignment step) plus a random subset of the
    global attributes; the value of (key, attribute) is globally consistent,
    so FD merges fragments of the same key into wider facts.
    """
    rng = random.Random(seed)
    keys = [f"e{i}" for i in range(key_pool_size)]
    attributes = [f"attr_{i}" for i in range(num_attributes)]

    def value_of(key: str, attribute: str) -> Cell:
        # Deterministic per (key, attribute): fragments never conflict.
        local = random.Random((key, attribute).__repr__())
        return f"{attribute}:{local.randint(0, 9999)}"

    tables = []
    for t in range(num_tables):
        chosen_attrs = rng.sample(attributes, min(attributes_per_table, num_attributes))
        chosen_keys = rng.sample(keys, min(rows_per_table, key_pool_size))
        header = ["Key"] + chosen_attrs
        rows = []
        for key in chosen_keys:
            cells: list[Cell] = [key]
            for attribute in chosen_attrs:
                if rng.random() < null_rate:
                    cells.append(MISSING)
                else:
                    cells.append(value_of(key, attribute))
            rows.append(tuple(cells))
        tables.append(Table(header, rows, name=f"frag_{t}"))
    return tables
