"""The lake-wide column-statistics cache view.

Per-column statistics are stored on each (immutable) :class:`Table` --
see :mod:`repro.table.stats` for the cache and its invalidation contract.
:class:`LakeStats` is the lake-level window onto those per-table caches: it
is what the :class:`~repro.datalake.catalog.DataLake` and
:class:`~repro.datalake.indexer.LakeIndex` own, what the profiler and every
discoverer share, and what tests interrogate to assert that a whole
discover -> integrate run scanned each column's raw data exactly once.

Cache keys are effectively ``(table.uid, column)`` scoped to the lake --
``uid`` being the process-unique monotonic identity every
:class:`~repro.table.table.Table` receives at construction, never
``id(table)`` (object ids are recycled after garbage collection; uids are
not, so a dead table's stats can never be served for an unrelated
successor).  Because stats live on the table object, replacing a table
(the only legal "mutation" -- tables are immutable by convention)
automatically starts from a cold cache under a fresh uid, and two lakes
sharing table objects share their stats.

Serving mode (:mod:`repro.service`): this view is read concurrently by
every worker thread of a lake service.  Reads of already-computed
products are safe (immutable frozensets/tuples, published by single
attribute stores); a cold column racing two readers computes its scan
twice with equal results -- which a warm service never does, since
hydrated snapshots arrive fully scanned.  For long-running processes the
*store-side* cache behind this view is the one that can grow without
bound; bound it with ``LakeStore.open(..., stats_cache_capacity=N)``
(see the ROADMAP cache-invalidation note).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..table.stats import ColumnStats, TableStats
from ..table.table import Table

__all__ = ["LakeStats"]


class LakeStats:
    """All column stats of every table in one lake (a live view).

    The view reads through to ``table.stats``; it performs no copies and
    holds no state beyond the lake mapping itself, so any consumer touching
    a table directly still shares the same memoized statistics.
    """

    def __init__(self, lake: Mapping[str, Table]):
        self._lake = lake

    def table(self, name: str) -> TableStats:
        """Stats of one lake table."""
        return self._lake[name].stats

    def column(self, table_name: str, column: str) -> ColumnStats:
        """Stats of one column of one lake table."""
        return self._lake[table_name].stats.column(column)

    def __iter__(self) -> Iterator[tuple[str, TableStats]]:
        for name, table in self._lake.items():
            yield name, table.stats

    def warm(self) -> "LakeStats":
        """Run every column's base scan now (one pass per column) so that
        index building and profiling start from a fully shared cache."""
        for table in self._lake.values():
            table.stats.warm()
        return self

    def scan_counts(self) -> dict[tuple[str, str], int]:
        """``(table name, column) -> raw base-scan passes`` for the lake.

        After any sequence of profile / fit / search / integrate calls over
        an unchanged lake, every count is at most 1 -- that is the shared-
        substrate guarantee this PR introduces, and the scan-counter tests
        pin it.
        """
        counts: dict[tuple[str, str], int] = {}
        for name, table in self._lake.items():
            for column, count in table.stats.scan_counts.items():
                counts[(name, column)] = count
        return counts

    def total_scans(self) -> int:
        """Total raw column passes performed across the lake so far."""
        return sum(self.scan_counts().values())

    def __repr__(self) -> str:
        return f"LakeStats({len(self._lake)} tables)"
