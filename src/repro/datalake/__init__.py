"""Data-lake substrate: catalogs over CSV directories, offline index
building, seed vocabularies, paper fixtures and the synthetic-lake
generator with ground truth."""

from . import fixtures, seeds
from .catalog import DataLake
from .indexer import LakeIndex
from .profiler import profile_lake, profile_table
from .stats import LakeStats
from .synth import (
    GroundTruth,
    SyntheticLake,
    SyntheticLakeBuilder,
    build_integration_set,
    perturb_string,
)

__all__ = [
    "DataLake",
    "LakeIndex",
    "LakeStats",
    "profile_lake",
    "profile_table",
    "SyntheticLakeBuilder",
    "SyntheticLake",
    "GroundTruth",
    "build_integration_set",
    "perturb_string",
    "seeds",
    "fixtures",
]
