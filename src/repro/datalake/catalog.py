"""The data-lake catalog: a named collection of tables.

A :class:`DataLake` is a ``Mapping[str, Table]`` (so every discoverer's
``fit`` accepts it directly) backed either by in-memory tables or by a
directory of CSV files.  It is deliberately small -- the lake is a
*substrate*, not a database: no transactions, no mutation of loaded files.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path
from typing import Iterable, Iterator

from ..table.io import read_csv, write_csv
from ..table.table import Table

__all__ = ["DataLake"]


class DataLake(Mapping[str, Table]):
    """An immutable-by-convention mapping of table name -> table."""

    def __init__(self, tables: Iterable[Table] = ()):
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tables(cls, tables: Iterable[Table]) -> "DataLake":
        return cls(tables)

    @classmethod
    def from_dir(cls, directory: str | Path, pattern: str = "*.csv") -> "DataLake":
        """Load every CSV under *directory* (table name = file stem)."""
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"data lake directory not found: {directory}")
        lake = cls()
        for path in sorted(directory.glob(pattern)):
            lake.add(read_csv(path))
        return lake

    @classmethod
    def open(cls, store_path: str | Path, **open_options) -> "DataLake":
        """Open a persistent lake store (:mod:`repro.store`) as a lazy lake.

        The returned lake reads only the store manifest up front: a table's
        cell data is paged in from its columnar segment on first access,
        and every table arrives with its statistics snapshot (distinct
        sets, tokens, sketches) pre-hydrated -- a warm start that performs
        zero raw-cell scans.  Keyword options are forwarded to
        :meth:`repro.store.LakeStore.open` (e.g. ``sketch_config``).
        """
        from ..store.lakestore import LakeStore

        return LakeStore.open(store_path, **open_options).lake()

    def add(self, table: Table) -> None:
        """Register a table; duplicate names are an error (ambiguity in a
        lake catalog silently shadows data)."""
        if table.name in self._tables:
            raise ValueError(f"table name already in lake: {table.name!r}")
        self._tables[table.name] = table

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r} in lake; {len(self._tables)} tables available"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"DataLake({len(self._tables)} tables)"

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    @property
    def stats(self) -> "LakeStats":
        """The lake-wide column-statistics view (see
        :mod:`repro.datalake.stats`): one shared, memoized set of per-column
        stats that the profiler, every discoverer and the aligner consume
        instead of re-scanning raw columns."""
        from .stats import LakeStats

        return LakeStats(self)

    @property
    def names(self) -> list[str]:
        return list(self._tables)

    def tables(self) -> list[Table]:
        """All tables, in registration order."""
        return list(self._tables.values())

    def total_rows(self) -> int:
        """Sum of row counts across the lake."""
        return sum(t.num_rows for t in self._tables.values())

    def save_to(self, directory: str | Path) -> None:
        """Write every table as ``<name>.csv`` under *directory*."""
        directory = Path(directory)
        for name, table in self._tables.items():
            write_csv(table, directory / f"{name}.csv")

    def subset(self, names: Iterable[str]) -> list[Table]:
        """The tables named in *names*, in that order (KeyError if absent)."""
        return [self[name] for name in names]
