"""Query-table generation from prompts (the GPT-3 substitute, Fig. 5)."""

from .generator import (
    available_topics,
    generate_query_table,
    parse_shape_from_prompt,
    template_for,
)
from .templates import TEMPLATES, ColumnTemplate, TableTemplate, match_template

__all__ = [
    "generate_query_table",
    "parse_shape_from_prompt",
    "available_topics",
    "template_for",
    "TEMPLATES",
    "TableTemplate",
    "ColumnTemplate",
    "match_template",
]
