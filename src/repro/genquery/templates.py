"""Prompt templates for query-table generation.

The demo's GPT-3 feature turns a prompt like *"a table about COVID-19 cases
with 5 rows and 5 columns"* into a query table.  Offline, each
:class:`TableTemplate` declares the columns a topic supports (each with a
deterministic value generator over the seed vocabularies) and the keywords
that route a prompt to it.  The substitution preserves what the pipeline
needs: a realistic, schema-ful table appears from a free-text prompt.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..datalake import seeds

__all__ = ["ColumnTemplate", "TableTemplate", "TEMPLATES", "match_template"]

ValueGen = Callable[[random.Random, int], object]


@dataclass(frozen=True)
class ColumnTemplate:
    """One generatable column: a name and a per-row value generator.

    The generator receives the RNG and the row index; row index lets keyed
    columns (cities, names) stay duplicate-free within one table.
    """

    name: str
    generate: ValueGen


def _choice_column(name: str, pool: Sequence[str]) -> ColumnTemplate:
    def generate(rng: random.Random, row: int) -> object:
        # Sample without replacement per table: rotate through a shuffled
        # copy seeded once per table (the RNG is per-table already).
        return pool[(row * 7 + rng.randrange(len(pool))) % len(pool)]

    return ColumnTemplate(name, generate)


def _keyed_column(name: str, pool: Sequence[str]) -> ColumnTemplate:
    """Duplicate-free column: row i takes the i-th item of a shuffled pool."""

    def generate(rng: random.Random, row: int) -> object:
        if row == 0 and not hasattr(rng, "_keyed_order"):
            pass  # state lives in the generator closure below instead
        return pool[row % len(pool)]

    # A closure-level shuffle would share state across tables; instead the
    # template shuffles lazily inside TableTemplate.generate (which owns the
    # per-table RNG).  Marker attribute tells it to.
    column = ColumnTemplate(name, generate)
    object.__setattr__(column, "keyed_pool", tuple(pool))
    return column


def _percent_column(name: str, low: int = 30, high: int = 95) -> ColumnTemplate:
    return ColumnTemplate(name, lambda rng, row: f"{rng.randint(low, high)}%")


def _count_column(name: str, low: int = 1, high: int = 5000) -> ColumnTemplate:
    def generate(rng: random.Random, row: int) -> object:
        value = rng.randint(low, high)
        if value >= 1000:
            return f"{value / 1000:.4g}k"
        return value

    return ColumnTemplate(name, generate)


def _float_column(name: str, low: float, high: float, digits: int = 1) -> ColumnTemplate:
    return ColumnTemplate(
        name, lambda rng, row: round(rng.uniform(low, high), digits)
    )


@dataclass(frozen=True)
class TableTemplate:
    """A topic: routing keywords plus the columns it can generate."""

    topic: str
    keywords: tuple[str, ...]
    columns: tuple[ColumnTemplate, ...]


TEMPLATES: tuple[TableTemplate, ...] = (
    TableTemplate(
        topic="covid",
        keywords=("covid", "pandemic", "vaccination", "cases", "virus", "health"),
        columns=(
            _keyed_column("City", list(seeds.CITIES)),
            ColumnTemplate(
                "Country",
                lambda rng, row: rng.choice(list(seeds.COUNTRIES)),
            ),
            _percent_column("Vaccination Rate"),
            _count_column("Total Cases", 100, 3_000_000),
            _float_column("Death Rate", 50, 400, 0),
        ),
    ),
    TableTemplate(
        topic="vaccines",
        keywords=("vaccine", "approval", "regulator", "drug"),
        columns=(
            _keyed_column("Vaccine", list(seeds.VACCINES)),
            ColumnTemplate(
                "Country",
                lambda rng, row: seeds.VACCINES[list(seeds.VACCINES)[row % len(seeds.VACCINES)]][1],
            ),
            ColumnTemplate(
                "Approver",
                lambda rng, row: seeds.VACCINES[list(seeds.VACCINES)[row % len(seeds.VACCINES)]][2],
            ),
            _percent_column("Efficacy", 50, 96),
            _count_column("Doses Administered", 1000, 5_000_000),
        ),
    ),
    TableTemplate(
        topic="people",
        keywords=("people", "person", "employee", "staff", "roster", "directory"),
        columns=(
            ColumnTemplate("First Name", lambda rng, row: rng.choice(seeds.FIRST_NAMES)),
            ColumnTemplate("Last Name", lambda rng, row: rng.choice(seeds.LAST_NAMES)),
            ColumnTemplate("Company", lambda rng, row: rng.choice(list(seeds.COMPANIES))),
            _float_column("Salary", 40_000, 180_000, 0),
            ColumnTemplate("City", lambda rng, row: rng.choice(list(seeds.CITIES))),
        ),
    ),
    TableTemplate(
        topic="restaurants",
        keywords=("restaurant", "food", "cuisine", "dining", "menu"),
        columns=(
            ColumnTemplate(
                "Restaurant",
                lambda rng, row: f"{rng.choice(seeds.LAST_NAMES)}'s {rng.choice(seeds.CUISINES)}",
            ),
            ColumnTemplate("Cuisine", lambda rng, row: rng.choice(seeds.CUISINES)),
            _keyed_column("City", list(seeds.CITIES)),
            _float_column("Rating", 1.0, 5.0),
            _count_column("Reviews", 5, 4000),
        ),
    ),
    TableTemplate(
        topic="education",
        keywords=("school", "course", "student", "education", "university"),
        columns=(
            _keyed_column("Subject", list(seeds.SCHOOL_SUBJECTS)),
            ColumnTemplate("Teacher", lambda rng, row: rng.choice(seeds.LAST_NAMES)),
            _count_column("Enrolled", 5, 500),
            _percent_column("Pass Rate", 40, 100),
            ColumnTemplate("City", lambda rng, row: rng.choice(list(seeds.CITIES))),
        ),
    ),
    TableTemplate(
        topic="sports",
        keywords=("sport", "team", "match", "league", "tournament"),
        columns=(
            _keyed_column("Sport", list(seeds.SPORTS)),
            ColumnTemplate("Country", lambda rng, row: rng.choice(list(seeds.COUNTRIES))),
            _count_column("Players", 2, 30),
            _count_column("Fans", 1000, 5_000_000),
            _float_column("Avg Score", 0, 120, 1),
        ),
    ),
    TableTemplate(
        topic="weather",
        keywords=("weather", "climate", "temperature", "rainfall", "forecast"),
        columns=(
            _keyed_column("City", list(seeds.CITIES)),
            _float_column("Temperature", -15, 42, 1),
            _float_column("Rainfall", 0, 300, 1),
            _percent_column("Humidity", 20, 100),
            ColumnTemplate("Season", lambda rng, row: rng.choice(
                ("Winter", "Spring", "Summer", "Autumn"))),
        ),
    ),
    TableTemplate(
        topic="housing",
        keywords=("housing", "rent", "property", "real estate", "apartment"),
        columns=(
            _keyed_column("City", list(seeds.CITIES)),
            _float_column("Median Rent", 400, 4500, 0),
            _float_column("Price per sqm", 800, 25000, 0),
            _percent_column("Vacancy Rate", 1, 15),
            _count_column("Listings", 50, 40_000),
        ),
    ),
    TableTemplate(
        topic="transit",
        keywords=("transit", "transport", "metro", "bus", "commute", "traffic"),
        columns=(
            _keyed_column("City", list(seeds.CITIES)),
            _count_column("Daily Riders", 1000, 8_000_000),
            _count_column("Stations", 5, 450),
            _float_column("Avg Commute", 10, 90, 0),
            _percent_column("On-time Rate", 55, 99),
        ),
    ),
    TableTemplate(
        topic="energy",
        keywords=("energy", "electricity", "power", "renewable", "emissions"),
        columns=(
            _keyed_column("Country", list(seeds.COUNTRIES)),
            _percent_column("Renewable Share", 2, 98),
            _count_column("Capacity MW", 100, 1_500_000),
            _float_column("CO2 per Capita", 0.2, 20, 1),
            _float_column("Price per kWh", 0.05, 0.6, 2),
        ),
    ),
)


def match_template(prompt: str) -> TableTemplate:
    """Route a prompt to the best-matching template (keyword votes; the
    first template -- covid, matching the paper's demo -- is the fallback)."""
    lowered = prompt.lower()
    best = TEMPLATES[0]
    best_votes = 0
    for template in TEMPLATES:
        votes = sum(1 for keyword in template.keywords if keyword in lowered)
        if votes > best_votes:
            best = template
            best_votes = votes
    return best
