"""Prompt -> query table (the GPT-3 substitute; paper Fig. 5).

``generate_query_table("a table about covid cases", rows=5, columns=5)``
routes the prompt to a topic template, then deterministically (seeded RNG)
samples the requested shape.  Requesting more columns than the topic defines
pads with generic ``Attribute N`` numeric columns; fewer truncates.
"""

from __future__ import annotations

import random
import re

from ..table.table import Table
from .templates import TEMPLATES, ColumnTemplate, TableTemplate, match_template

__all__ = ["generate_query_table", "parse_shape_from_prompt"]

_ROWS_RE = re.compile(r"(\d+)\s*rows?")
_COLS_RE = re.compile(r"(\d+)\s*col(?:umn)?s?")


def parse_shape_from_prompt(prompt: str) -> tuple[int | None, int | None]:
    """Extract "(rows, columns)" hints like "5 rows and 5 columns"."""
    rows_match = _ROWS_RE.search(prompt.lower())
    cols_match = _COLS_RE.search(prompt.lower())
    return (
        int(rows_match.group(1)) if rows_match else None,
        int(cols_match.group(1)) if cols_match else None,
    )


def generate_query_table(
    prompt: str,
    rows: int | None = None,
    columns: int | None = None,
    seed: int = 0,
    name: str = "generated_query",
) -> Table:
    """Generate a query table from a free-text *prompt*.

    Shape resolution order: explicit arguments, then shape hints inside the
    prompt ("5 rows", "5 columns"), then the template's natural width and 5
    rows.  Fully deterministic for a fixed (prompt, shape, seed).
    """
    template = match_template(prompt)
    hint_rows, hint_columns = parse_shape_from_prompt(prompt)
    num_rows = rows if rows is not None else (hint_rows if hint_rows is not None else 5)
    num_columns = (
        columns
        if columns is not None
        else (hint_columns if hint_columns is not None else len(template.columns))
    )
    if num_rows <= 0 or num_columns <= 0:
        raise ValueError("rows and columns must be positive")

    rng = random.Random((seed, template.topic, num_rows, num_columns).__repr__())
    chosen = list(template.columns[:num_columns])
    for extra in range(num_columns - len(chosen)):
        chosen.append(_generic_column(extra))

    keyed_orders: dict[str, list[object]] = {}
    for column in chosen:
        pool = getattr(column, "keyed_pool", None)
        if pool is not None:
            order = list(pool)
            rng.shuffle(order)
            keyed_orders[column.name] = order

    table_rows = []
    for row in range(num_rows):
        cells = []
        for column in chosen:
            if column.name in keyed_orders:
                order = keyed_orders[column.name]
                cells.append(order[row % len(order)])
            else:
                cells.append(column.generate(rng, row))
        table_rows.append(tuple(cells))
    return Table([c.name for c in chosen], table_rows, name=name)


def _generic_column(index: int) -> ColumnTemplate:
    return ColumnTemplate(
        f"Attribute {index + 1}", lambda rng, row: round(rng.uniform(0, 100), 2)
    )


def available_topics() -> list[str]:
    """Topics the generator understands (for docs and error messages)."""
    return [template.topic for template in TEMPLATES]


def template_for(prompt: str) -> TableTemplate:
    """Expose routing for tests and curious users."""
    return match_template(prompt)
