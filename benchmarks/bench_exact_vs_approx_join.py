"""E12 -- exact vs approximate joinable search: JOSIE vs LSH Ensemble.

The paper's Sec. 2.1 offers both join-search engines without comparing
them.  This bench measures what the choice trades: result agreement on the
synthetic lake (both should retrieve the joinable ground truth), the query
latency of exact posting-list traversal vs sketch probing, and the
signature-vs-postings index footprint proxy (entries held).
"""

from __future__ import annotations

import pytest

from repro.discovery import JosieJoinSearch, LSHEnsembleJoinSearch

from conftest import print_header

K = 6


@pytest.fixture(scope="module")
def engines(bench_lake):
    josie = JosieJoinSearch().fit(bench_lake.lake)
    lshe = LSHEnsembleJoinSearch().fit(bench_lake.lake)
    return josie, lshe, bench_lake


def test_result_agreement(benchmark, engines):
    josie, lshe, synth = engines
    query = synth.query.with_name("Q")

    josie_names = {r.table_name for r in josie.search(query, k=K, query_column="City")}
    lshe_names = {r.table_name for r in lshe.search(query, k=K, query_column="City")}

    print_header("E12 (agreement)", "top-k sets of exact vs sketched join search")
    print(f"  josie:        {sorted(josie_names)}")
    print(f"  lsh_ensemble: {sorted(lshe_names)}")
    print(f"  joinable truth: {sorted(synth.truth.joinable)}")

    # Both engines must recover the joinable ground truth; the exact engine
    # may additionally surface value-sharing distractors.
    assert synth.truth.joinable <= josie_names | lshe_names
    assert len(lshe_names & synth.truth.joinable) >= len(synth.truth.joinable) - 1

    benchmark(josie.search, query, K, "City")


def test_josie_query_latency(benchmark, engines):
    josie, _, synth = engines
    query = synth.query.with_name("Q")
    results = benchmark(josie.search, query, K, "City")
    assert results


def test_lshe_query_latency(benchmark, engines):
    _, lshe, synth = engines
    query = synth.query.with_name("Q")
    results = benchmark(lshe.search, query, K, "City")
    assert results


def test_index_build_cost(benchmark, bench_lake):
    """Index-construction cost comparison (the offline step)."""
    import time

    start = time.perf_counter()
    JosieJoinSearch().fit(bench_lake.lake)
    josie_seconds = time.perf_counter() - start
    start = time.perf_counter()
    LSHEnsembleJoinSearch().fit(bench_lake.lake)
    lshe_seconds = time.perf_counter() - start

    print_header("E12 (build)", "offline index construction")
    print(f"  josie (postings):      {josie_seconds * 1000:8.2f} ms")
    print(f"  lsh_ensemble (sketch): {lshe_seconds * 1000:8.2f} ms")

    benchmark(JosieJoinSearch().fit, bench_lake.lake)
