"""E16 -- greedy vs exhaustively-optimal holistic matching.

ALITE frames matching as an optimization problem; the library's greedy
constrained clustering is the standard approximation.  On small schemas the
exhaustive oracle is feasible, so we can measure how much objective the
greedy pass leaves on the table: on the paper fixtures the answer is zero,
and the runtime gap shows why greedy is the production choice.
"""

from __future__ import annotations

import time

from repro.alignment import (
    cluster_columns,
    cluster_columns_optimal,
    featurize_tables,
    partition_objective,
)
from repro.discovery.kb import seed_knowledge_base

from conftest import print_header


def _objective(columns, clusters):
    index_of = {column.ref: i for i, column in enumerate(columns)}
    return partition_objective(
        columns, [[index_of[ref] for ref in cluster] for cluster in clusters]
    )


def test_greedy_matches_optimal_on_paper_fixtures(benchmark, covid_tables, vaccine_tables):
    kb = seed_knowledge_base()
    print_header("E16", "greedy vs optimal clustering objective")
    print(f"{'fixture':<12} {'greedy obj':>11} {'optimal obj':>12} {'greedy ms':>10} {'optimal ms':>11}")
    for label, tables in (("covid", covid_tables), ("vaccines", vaccine_tables)):
        columns = featurize_tables(tables, kb=kb)
        start = time.perf_counter()
        greedy = cluster_columns(columns)
        greedy_seconds = time.perf_counter() - start
        start = time.perf_counter()
        optimal = cluster_columns_optimal(columns)
        optimal_seconds = time.perf_counter() - start
        greedy_objective = _objective(columns, greedy)
        optimal_objective = _objective(columns, optimal)
        print(
            f"{label:<12} {greedy_objective:>11.3f} {optimal_objective:>12.3f} "
            f"{greedy_seconds * 1000:>10.2f} {optimal_seconds * 1000:>11.2f}"
        )
        assert greedy == optimal  # zero approximation loss here

    columns = featurize_tables(vaccine_tables, kb=kb)
    benchmark(cluster_columns, columns)


def test_optimal_cost_explodes(benchmark, vaccine_tables):
    """The oracle's cost curve is the argument for greedy."""
    kb = seed_knowledge_base()
    columns = featurize_tables(vaccine_tables, kb=kb)
    result = benchmark(cluster_columns_optimal, columns)
    assert result  # 6 columns -> Bell(6) = 203 partitions, still fast
