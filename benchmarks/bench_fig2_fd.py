"""E1 -- Figures 2/3: align + integrate the COVID tables (Examples 1-2).

Regenerates FD(T1, T2, T3) exactly as printed in Figure 3 and times the
full align-and-integrate stage on the paper's own input.
"""

from __future__ import annotations

from repro.alignment import HolisticAligner
from repro.integration import AliteFD

from conftest import print_header


def _align_and_integrate(tables):
    alignment = HolisticAligner().align(tables)
    return AliteFD().integrate(alignment.apply(tables))


def test_figure3_fd_result(benchmark, covid_tables):
    result = benchmark(_align_and_integrate, covid_tables)

    print_header("E1 (Fig. 2-3)", "ALITE FD over the COVID integration set")
    print(result.to_display_table().to_pretty())

    assert result.num_rows == 7
    assert result.find_fact(City="Berlin") == frozenset({"t1", "t7"})
    assert result.find_fact(City="Barcelona") == frozenset({"t3", "t8"})
    assert result.find_fact(City="Boston") == frozenset({"t6", "t9"})
    assert result.find_fact(City="New Delhi") == frozenset({"t10"})
