"""E10 -- discovery quality: precision/recall@k against ground truth.

The demo's discovery stage (Sec. 2.1) leans on SANTOS for unionable and LSH
Ensemble / JOSIE for joinable search.  On synthetic lakes with known ground
truth: each discoverer must rank its own relevance class highest, and the
merged union must cover (high recall over) all relevant tables.
"""

from __future__ import annotations

import pytest

from repro import Dialite

from conftest import print_header

K = 6


@pytest.fixture(scope="module")
def fitted(bench_lake):
    return Dialite(bench_lake.lake).fit(), bench_lake


def _precision_recall(found, relevant, k):
    top = found[:k]
    hits = sum(1 for name in top if name in relevant)
    return hits / max(1, len(top)), hits / max(1, len(relevant))


def test_santos_union_quality(benchmark, fitted):
    pipeline, synth = fitted
    query = synth.query.with_name("Q")
    results = benchmark(
        pipeline.discoverers.get("santos").search, query, K, "City"
    )
    precision, recall = _precision_recall(
        [r.table_name for r in results], synth.truth.unionable, K
    )
    print_header("E10 (SANTOS)", f"P@{K}={precision:.2f} R@{K}={recall:.2f} vs unionable truth")
    assert recall >= 0.8

def test_lsh_ensemble_join_quality(benchmark, fitted):
    pipeline, synth = fitted
    query = synth.query.with_name("Q")
    results = benchmark(
        pipeline.discoverers.get("lsh_ensemble").search, query, K, "City"
    )
    precision, recall = _precision_recall(
        [r.table_name for r in results], synth.truth.joinable, K
    )
    print_header("E10 (LSHE)", f"P@{K}={precision:.2f} R@{K}={recall:.2f} vs joinable truth")
    assert recall >= 0.8


def test_josie_exact_join_quality(benchmark, fitted):
    pipeline, synth = fitted
    query = synth.query.with_name("Q")
    results = benchmark(pipeline.discoverers.get("josie").search, query, K, "City")
    found = [r.table_name for r in results]
    precision, recall = _precision_recall(found, synth.truth.joinable, K)
    print_header("E10 (JOSIE)", f"P@{K}={precision:.2f} R@{K}={recall:.2f} vs joinable truth")
    # JOSIE is exact overlap: joinable tables (shared city domains) must
    # dominate the top ranks.
    assert recall >= 0.8


def test_merged_union_recall(benchmark, fitted):
    pipeline, synth = fitted
    query = synth.query.with_name("Q")
    merged = benchmark(pipeline.index.search_merged, query, K, "City")
    found = [r.table_name for r in merged]
    relevant = synth.truth.relevant()
    hits = sum(1 for name in found if name in relevant)
    recall = hits / len(relevant)

    print_header("E10 (union)", "the integration-set construction of Sec. 3.1")
    print(f"  union of all top-{K} result sets: {len(found)} tables, "
          f"recall over all relevant = {recall:.2f}")
    for result in merged[:10]:
        marker = "+" if result.table_name in relevant else "-"
        print(f"  {marker} {result.table_name:<16} {result.score:.3f}  {result.reason}")
    assert recall >= 0.8


@pytest.mark.parametrize("k", [1, 3, 6])
def test_precision_at_k_sweep(benchmark, fitted, k):
    pipeline, synth = fitted
    query = synth.query.with_name("Q")
    merged = benchmark(pipeline.index.search_merged, query, k, "City")
    precision, _ = _precision_recall(
        [r.table_name for r in merged], synth.truth.relevant(), k
    )
    assert precision >= 0.9  # top ranks are clean on the synthetic lake
