"""Chaos harness: a sharded service under injected faults stays correct.

The fault-tolerance acceptance gate (ISSUE 9): a 4-shard
:class:`repro.service.LakeService` behind TCP, serving concurrent
discover clients *while* the harness kills shard worker processes,
drops client connections and runs concurrent ingests, must degrade
gracefully -- never wrongly:

1. **Zero raw failures.**  Every request completes: transparently
   (supervised respawn + retry, client-side reconnect backoff) or as an
   explicitly *degraded* response annotated with ``degraded_shards``.
2. **Zero wrong or stale answers.**  Every non-degraded payload is
   byte-identical to a per-version oracle -- a fresh pipeline opened on
   a clone of the store at exactly the lake version the response is
   stamped with.  Faults may cost latency or completeness (annotated),
   never correctness.
3. **The chaos actually happened.**  At least one worker respawn, one
   supervised scatter failure and one degraded response are observed --
   otherwise the run is vacuous and fails.
4. **Bounded latency.**  Non-degraded p95 under chaos stays within 2x
   the no-fault baseline p95 (gated under ``--check``; reported always).
5. **Telemetry saw everything (ISSUE 10).**  The service runs with a
   flight recorder armed: every degraded request must land in the
   postmortem JSONL with its full span tree attached, the SLO monitor
   must be firing ``degraded_rate`` when health is polled right after
   the degraded probe, and any non-ok health status must be explained
   by SLO burn, never by a shard that stayed dead.

Entry points: ``python benchmarks/bench_chaos.py --smoke`` is what
``make chaos-smoke`` runs in CI; ``make bench-chaos`` runs full scale
with the latency gate.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import threading
import time
from math import ceil
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import Dialite  # noqa: E402
from repro.faults import RetryPolicy, inject  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs.export import metrics_document, snapshot_identity  # noqa: E402
from repro.service import (  # noqa: E402
    LakeServer,
    LakeService,
    ServiceClient,
    oracle_discover_payload,
)
from repro.shard import ShardedLakeStore  # noqa: E402
from repro.table import Table  # noqa: E402

K = 5
NUM_SHARDS = 4


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def make_tables(num_tables: int, rows: int, seed: int) -> dict[str, Table]:
    rng = random.Random(seed)
    tables = {}
    for i in range(num_tables):
        name = f"t{i:03d}"
        tables[name] = Table(
            ["City", "State", "Pop"],
            [
                (f"city{rng.randrange(num_tables * 2)}", f"state{j % 5}", i * 100 + j)
                for j in range(rows)
            ],
            name=name,
        )
    return tables


def make_queries(count: int, num_tables: int, tag: str, seed: int) -> list[Table]:
    """Unique-content queries over the lake's vocabulary: every request
    misses the cache, so every request scatters (and can meet a fault)."""
    rng = random.Random(seed)
    return [
        Table(
            ["City", "State"],
            [
                (f"city{rng.randrange(num_tables * 2)}", f"state{j % 5}")
                for j in range(4)
            ],
            name=f"q_{tag}_{i}",
        )
        for i in range(count)
    ]


def make_plants(num_tables: int, seed: int) -> list[Table]:
    rng = random.Random(seed)
    return [
        Table(
            ["City", "State", "Pop"],
            [
                (f"city{rng.randrange(num_tables * 2)}", f"state{j % 5}", 9000 + j)
                for j in range(8)
            ],
            name=f"plant_{i}",
        )
        for i in range(2)
    ]


def canonical(payload: dict) -> str:
    # The annotation never enters the identity check: a degraded payload
    # is compared only by the caller deciding to skip it.
    return json.dumps(payload, sort_keys=True)


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered), max(1, ceil(q * len(ordered))))
    return ordered[rank - 1]


# ----------------------------------------------------------------------
# Per-version oracle: clone the store, apply the same ingests, snapshot
# what a fresh pipeline serves at each version
# ----------------------------------------------------------------------
def oracle_by_version(
    store_path: Path, clone_path: Path, plants: list[Table], queries: list[Table]
) -> dict[int, dict[str, str]]:
    shutil.copytree(store_path, clone_path)
    oracle: dict[int, dict[str, str]] = {}
    for applied in range(len(plants) + 1):
        store = ShardedLakeStore.open(clone_path, check_sketch=False)
        if applied:
            store.ingest({plants[applied - 1].name: plants[applied - 1]}, prune=False)
            store = store.reopen()
        pipeline = Dialite.open(clone_path).fit()
        oracle[store.lake_version] = {
            q.name: canonical(oracle_discover_payload(pipeline, q, k=K))
            for q in queries
        }
        close = getattr(pipeline._index, "close", None)
        if close:
            close()
    return oracle


# ----------------------------------------------------------------------
# One concurrent phase: clients drain a shared schedule of actions
# ----------------------------------------------------------------------
def run_phase(
    service: LakeService,
    address: tuple,
    schedule: list[tuple],
    clients: int,
) -> list[dict]:
    """Each schedule entry is ``("query", table)``, ``("ingest", table)``,
    ``("kill", shard, times)`` or ``("drop", times)``.  Fault entries arm
    the injection plane from whichever client thread draws them, so the
    faults land *between and during* in-flight requests, not in a sterile
    gap.  Returns one record per query entry."""
    iterator = iter(schedule)
    lock = threading.Lock()
    records: list[dict] = []

    def worker():
        host, port = address
        client = ServiceClient(
            (host, port),
            timeout=90.0,
            retry=RetryPolicy(attempts=6, base_delay=0.02, max_delay=0.25),
        )
        while True:
            with lock:
                entry = next(iterator, None)
            if entry is None:
                return
            kind = entry[0]
            if kind == "kill":
                inject.kill_worker(entry[1], times=entry[2])
                continue
            if kind == "drop":
                inject.drop_connection(times=entry[1])
                continue
            if kind == "ingest":
                # In-process on purpose: ingest is the one op the client
                # must never retry, so the harness does not race it
                # against its own armed connection drops.
                try:
                    service.ingest([entry[1]])
                except Exception as error:  # noqa: BLE001 - gate counts these
                    with lock:
                        records.append({
                            "query": f"ingest:{entry[1].name}",
                            "seconds": 0.0,
                            "error": f"{type(error).__name__}: {error}",
                        })
                continue
            query = entry[1]
            record = {"query": query.name}
            start = time.perf_counter()
            try:
                response = client.discover(query, k=K)
                record["seconds"] = time.perf_counter() - start
                record["version"] = response["lake_version"]
                record["payload"] = response["payload"]
                record["degraded"] = bool(
                    response["payload"].get("degraded_shards")
                )
            except Exception as error:  # noqa: BLE001 - gate counts these
                record["seconds"] = time.perf_counter() - start
                record["error"] = f"{type(error).__name__}: {error}"
            with lock:
                records.append(record)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return records


def verify(records: list[dict], oracle: dict[int, dict[str, str]]) -> dict:
    errors = [r["error"] for r in records if "error" in r]
    wrong = 0
    degraded = 0
    latencies = []
    for record in records:
        if "error" in record:
            continue
        if record["degraded"]:
            degraded += 1
            continue
        latencies.append(record["seconds"])
        expected = oracle.get(record["version"], {}).get(record["query"])
        if expected is None or canonical(record["payload"]) != expected:
            wrong += 1
    return {
        "requests": len(records),
        "errors": errors,
        "wrong": wrong,
        "degraded": degraded,
        "p95_s": round(percentile(latencies, 0.95), 4),
        "versions": sorted({r["version"] for r in records if "version" in r}),
    }


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------
def chaos_schedule(
    queries: list[Table], plants: list[Table], kills: int, drops: int, seed: int
) -> list[tuple]:
    """Interleave fault arms and the two ingests through the query list
    at seeded positions (deterministic runs, no wall-clock coupling)."""
    rng = random.Random(seed)
    schedule: list[tuple] = [("query", q) for q in queries]
    actions: list[tuple] = [
        ("kill", rng.randrange(NUM_SHARDS), 1) for _ in range(kills)
    ]
    actions += [("drop", 1 + rng.randrange(2)) for _ in range(drops)]
    for action in actions:
        schedule.insert(rng.randrange(1, len(schedule)), action)
    # The ingests split the run into thirds, so responses provably span
    # every lake version the oracle covers.
    third = len(schedule) // 3
    schedule.insert(third, ("ingest", plants[0]))
    schedule.insert(2 * third, ("ingest", plants[1]))
    return schedule


def run_suite(
    num_tables: int, requests: int, clients: int, kills: int, drops: int
) -> dict:
    base = Path(tempfile.mkdtemp(prefix="bench_chaos_"))
    inject.reset()
    try:
        store_path = base / "lake"
        store = ShardedLakeStore.create(store_path, num_shards=NUM_SHARDS)
        store.ingest(make_tables(num_tables, rows=10, seed=5))

        baseline_queries = make_queries(requests, num_tables, "base", seed=11)
        chaos_queries = make_queries(requests, num_tables, "chaos", seed=17)
        probe_query = make_queries(1, num_tables, "probe", seed=23)[0]
        settle_query = make_queries(1, num_tables, "settle", seed=41)[0]
        plants = make_plants(num_tables, seed=29)

        oracle = oracle_by_version(
            store_path,
            base / "oracle",
            plants,
            baseline_queries + chaos_queries + [probe_query, settle_query],
        )

        # The flight recorder is armed for the whole run: with a
        # postmortem sink configured every request carries a span tree,
        # so each degraded/errored answer must show up in the JSONL with
        # its full tree -- the ISSUE 10 capture gate.
        postmortem_path = base / "postmortem.jsonl"
        service = LakeService(
            store=store_path,
            workers=clients,
            queue_depth=max(64, clients * 4),
            batch_window=0.005,
            reload_check_interval=0.05,
            postmortem_path=postmortem_path,
        )
        server = LakeServer(service, port=0)
        server.start()
        registry = obs_metrics.global_registry()
        try:
            # Phase 1: no faults -- the latency baseline, verified at v0.
            baseline_records = run_phase(
                service,
                server.address,
                [("query", q) for q in baseline_queries],
                clients,
            )
            baseline = verify(baseline_records, oracle)

            # Phase 2: kills + drops + concurrent ingests under load.
            failures_before = registry.counter("shard.scatter.failures").value
            respawns_before = registry.counter("shard.worker.respawns").value
            chaos_records = run_phase(
                service,
                server.address,
                chaos_schedule(chaos_queries, plants, kills, drops, seed=31),
                clients,
            )
            inject.reset()  # disarm anything unconsumed before the probe
            # Settling query: the schedule's last ingest can land after
            # the final client query drained, so the newest version may
            # not have served anything yet.  Wait for the reload to
            # catch up, then query once more -- this pins the "versions
            # advance through every ingest" gate on the protocol, not on
            # thread timing.
            final_version = max(oracle)
            deadline = time.time() + 10.0
            while service.version < final_version and time.time() < deadline:
                time.sleep(0.05)
            settle_client = ServiceClient(server.address, timeout=90.0)
            settle_start = time.perf_counter()
            settle_response = settle_client.discover(settle_query, k=K)
            chaos_records.append({
                "query": settle_query.name,
                "seconds": time.perf_counter() - settle_start,
                "version": settle_response["lake_version"],
                "payload": settle_response["payload"],
                "degraded": bool(
                    settle_response["payload"].get("degraded_shards")
                ),
            })
            chaos = verify(chaos_records, oracle)
            chaos["scatter_failures"] = (
                registry.counter("shard.scatter.failures").value - failures_before
            )
            chaos["worker_respawns"] = (
                registry.counter("shard.worker.respawns").value - respawns_before
            )

            # Phase 3: a guaranteed-degraded probe -- kill one shard's
            # worker on the original submit AND the supervised retry.
            client = ServiceClient(server.address, timeout=90.0)
            inject.kill_worker(2, times=2)
            probe_response = client.discover(probe_query, k=K)
            inject.reset()
            probe = {
                "degraded_shards": probe_response["payload"].get("degraded_shards"),
                "cached": probe_response["cached"],
            }
            # The degraded answer must not have been cached: the same
            # request recomputes whole and matches the oracle.
            healed = client.discover(probe_query, k=K)
            probe["healed_from_cache"] = healed["cached"]
            probe["healed_matches_oracle"] = (
                canonical(healed["payload"])
                == oracle[healed["lake_version"]][probe_query.name]
            )
            probe["service_degraded_count"] = service.stats.degraded
            health = client.health()
            probe["health_after"] = health["status"]
            probe["shards_alive"] = all(
                shard["alive"] for shard in health.get("shards", [])
            )
            probe["slo_firing"] = sorted(
                {f["objective"] for f in health.get("slo", {}).get("firing", [])}
            )
        finally:
            server.close()
            inject.reset()

        # The recorder wrote synchronously during the run and the server
        # close above flushed the service, so the postmortem sink is
        # complete: one document per tripped request, tree attached.
        postmortems = []
        if postmortem_path.exists():
            with postmortem_path.open(encoding="utf-8") as sink:
                postmortems = [json.loads(line) for line in sink if line.strip()]
        recorder = {
            "entries": len(postmortems),
            "degraded_dumps": sum(
                1 for doc in postmortems if doc.get("reason") == "degraded"
            ),
            "with_trace": sum(1 for doc in postmortems if doc.get("trace")),
            "with_trace_id": sum(1 for doc in postmortems if doc.get("trace_id")),
            "reasons": sorted({doc.get("reason") for doc in postmortems}),
        }

        return {
            "suite": "chaos",
            "tables": num_tables,
            "shards": NUM_SHARDS,
            "clients": clients,
            "kills": kills,
            "drops": drops,
            "baseline": baseline,
            "chaos": chaos,
            "probe": probe,
            "recorder": recorder,
            # The run's process-wide metrics in the exporter's document
            # envelope, so .benchmarks/chaos.json is greppable alongside
            # live `repro obs export` JSONL sinks.
            "telemetry": metrics_document(
                obs_metrics.global_registry().snapshot(),
                snapshot_identity("bench-chaos"),
            ),
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)


def gate(results: dict, check: bool) -> list[str]:
    baseline, chaos, probe = (
        results["baseline"],
        results["chaos"],
        results["probe"],
    )
    failures = []
    for phase_name, phase in (("baseline", baseline), ("chaos", chaos)):
        if phase["errors"]:
            failures.append(
                f"{phase_name}: {len(phase['errors'])} raw failures, e.g. "
                f"{phase['errors'][0]}"
            )
        if phase["wrong"]:
            failures.append(
                f"{phase_name}: {phase['wrong']} non-degraded responses differ "
                f"from the per-version oracle"
            )
    if baseline["degraded"]:
        failures.append("baseline: degraded responses without any fault armed")
    if len(chaos["versions"]) < 3:
        failures.append(
            f"chaos phase saw versions {chaos['versions']}; the concurrent "
            f"ingests should have produced three"
        )
    if chaos["scatter_failures"] < 1 or chaos["worker_respawns"] < 1:
        failures.append(
            "chaos phase observed no supervised scatter failure/respawn -- "
            "the kills never landed (vacuous run)"
        )
    if probe["degraded_shards"] != [2]:
        failures.append(
            f"degraded probe expected degraded_shards [2], got "
            f"{probe['degraded_shards']}"
        )
    if probe["healed_from_cache"]:
        failures.append("degraded payload was served from cache after recovery")
    if not probe["healed_matches_oracle"]:
        failures.append("post-recovery recompute does not match the oracle")
    if probe["service_degraded_count"] + chaos["degraded"] < 1:
        failures.append("no degraded response observed anywhere")
    # Health after the degraded probe: the SLO monitor *should* be
    # burning (we just served degraded answers on purpose), so a warn/
    # degraded status is correct -- what must never happen is a shard
    # staying dead, or a non-ok status with no firing objective to
    # explain it.
    if not probe["shards_alive"]:
        failures.append("a shard worker stayed dead after supervision healed")
    if probe["health_after"] not in ("ok", "warn", "degraded"):
        failures.append(f"unexpected health status: {probe['health_after']}")
    if probe["health_after"] != "ok" and not probe["slo_firing"]:
        failures.append(
            f"health {probe['health_after']} with no firing SLO objective -- "
            f"degradation is not explained by burn"
        )
    if "degraded_rate" not in probe["slo_firing"]:
        failures.append(
            f"SLO monitor did not fire degraded_rate right after the degraded "
            f"probe (firing: {probe['slo_firing']})"
        )
    # Flight recorder: every degraded answer the service produced must
    # have been dumped with its full span tree.  Server-side dumps can
    # exceed the client-side degraded count (a response computed degraded
    # whose connection dropped is retried and recomputed), never trail it.
    recorder = results["recorder"]
    expected_dumps = chaos["degraded"] + 1  # + the guaranteed-degraded probe
    if recorder["degraded_dumps"] < expected_dumps:
        failures.append(
            f"flight recorder captured {recorder['degraded_dumps']} degraded "
            f"postmortems; at least {expected_dumps} degraded requests were "
            f"served"
        )
    if recorder["with_trace"] != recorder["entries"]:
        failures.append(
            f"{recorder['entries'] - recorder['with_trace']} postmortems were "
            f"dumped without a span tree attached"
        )
    if check and baseline["p95_s"] > 0:
        ratio = chaos["p95_s"] / baseline["p95_s"]
        if ratio > 2.0:
            failures.append(
                f"non-degraded chaos p95 {chaos['p95_s']}s is {ratio:.2f}x "
                f"the no-fault baseline p95 {baseline['p95_s']}s (> 2x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=48)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--kills", type=int, default=6)
    parser.add_argument("--drops", type=int, default=6)
    parser.add_argument("--smoke", action="store_true",
                        help="small scale, correctness gates only "
                        "(the `make chaos-smoke` CI mode)")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument("--check", action="store_true",
                        help="additionally gate non-degraded chaos p95 <= 2x "
                        "the no-fault baseline p95")
    args = parser.parse_args(argv)

    if args.smoke:
        num_tables, requests, clients, kills, drops = 20, 14, 4, 2, 2
    else:
        num_tables, requests, clients, kills, drops = (
            args.tables, args.requests, args.clients, args.kills, args.drops
        )
    results = run_suite(num_tables, requests, clients, kills, drops)

    baseline, chaos, probe = (
        results["baseline"], results["chaos"], results["probe"]
    )
    print(
        f"{results['tables']} tables over {results['shards']} shards, "
        f"{results['clients']} clients; baseline: {baseline['requests']} requests, "
        f"0 faults, p95 {baseline['p95_s']}s"
    )
    print(
        f"chaos: {chaos['requests']} requests under {results['kills']} kills + "
        f"{results['drops']} drops + 2 ingests -> errors {len(chaos['errors'])}, "
        f"wrong {chaos['wrong']}, degraded {chaos['degraded']}, "
        f"respawns {chaos['worker_respawns']}, versions {chaos['versions']}, "
        f"non-degraded p95 {chaos['p95_s']}s"
    )
    print(
        f"degraded probe: shards {probe['degraded_shards']}, healed from cache: "
        f"{probe['healed_from_cache']}, oracle match after heal: "
        f"{probe['healed_matches_oracle']}, health: {probe['health_after']}, "
        f"slo firing: {probe['slo_firing']}"
    )
    recorder = results["recorder"]
    print(
        f"flight recorder: {recorder['entries']} postmortems "
        f"({recorder['degraded_dumps']} degraded, reasons {recorder['reasons']}), "
        f"{recorder['with_trace']} with full span trees"
    )
    print(json.dumps(results))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results, indent=2), encoding="utf-8")
        print(f"written: {args.json}")

    failures = gate(results, check=args.check and not args.smoke)
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    print(
        "acceptance ok: every request completed (retried or explicitly "
        "degraded), zero wrong/stale responses vs the per-version oracle, "
        "supervision respawned killed workers, degraded answers were "
        "annotated and never cached, and every degraded request landed "
        "in the flight recorder with its full span tree"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
