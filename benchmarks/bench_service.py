"""Serving-layer benchmark: cached + batched concurrency vs cold calls.

The claims under test (ISSUE 5 acceptance):

1. **Throughput.**  A warm :class:`repro.service.LakeService` (result
   cache + discover micro-batching, closed-loop concurrent clients)
   serves a mixed **80/20 repeated/unique** discover workload at
   **>= 3x** the throughput of the pre-service shape: sequential calls
   that each open a cold ``Dialite`` from the store.
2. **Byte identity.**  Every service response payload is byte-identical
   (``json.dumps(..., sort_keys=True)``) to the sequential baseline's
   payload for the same request.
3. **Version consistency.**  Across a mid-run concurrent ingest, every
   response's stamped ``lake_version`` matches the payload an oracle
   pipeline opened at that exact version produces -- zero stale
   responses -- and the ingest actually changes a hot query's answer
   (so staleness would be detected, not vacuously absent).

Two entry points:

* standalone -- ``python benchmarks/bench_service.py [--smoke]
  [--json out.json] [--check]``; ``--smoke`` is what ``make serve-smoke``
  runs in CI: small scale, no speed gate, plus an **end-to-end socket
  smoke** (LakeServer + ServiceClient: discover/cache-hit/ingest/
  re-query/stats assertions over TCP);
* ``make bench-service`` runs full scale with the >= 3x gate.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import Dialite  # noqa: E402
from repro.datalake import DataLake, LakeIndex, seeds  # noqa: E402
from repro.service import (  # noqa: E402
    LakeServer,
    LakeService,
    ServiceClient,
    oracle_discover_payload,
)
from repro.store import LakeStore  # noqa: E402
from repro.table import MISSING, Table  # noqa: E402

K = 8
COLUMN = "key"


# ----------------------------------------------------------------------
# Workload: like bench_candidates -- single-token join keys + a city
# column -- with *planted* joinable tables behind each hot query, plus a
# plant-on-ingest table that changes hot query 0's answer mid-run.
# ----------------------------------------------------------------------
def make_workload(
    num_tables: int, num_hot: int = 4, num_unique: int = 12, rows: int = 20, seed: int = 23
):
    rng = random.Random(seed)
    cities = list(seeds.CITIES)

    def random_rows(keys):
        return [
            (
                key,
                rng.choice(cities),
                rng.randrange(10_000) if rng.random() > 0.05 else MISSING,
            )
            for key in keys
        ]

    def query(name):
        keys = [f"e{rng.randrange(num_tables * 5)}" for _ in range(rows)]
        table = Table(
            ["key", "city", "score"],
            [(key, rng.choice(cities), round(rng.random(), 4)) for key in keys],
            name=name,
        )
        return table, keys

    hot, hot_keys = [], []
    for i in range(num_hot):
        table, keys = query(f"hot_{i}")
        hot.append(table)
        hot_keys.append(keys)
    unique = [query(f"uniq_{i}")[0] for i in range(num_unique)]

    tables = []
    for i, keys in enumerate(hot_keys):
        for j in range(3):  # three joinable tables per hot query
            shared = keys[: (rows * 3) // 5]
            fresh = [f"e{rng.randrange(num_tables * 5)}" for _ in range(rows - len(shared))]
            tables.append(
                Table(["key", "city", f"metric_{j}"], random_rows(shared + fresh),
                      name=f"join_{i}_{j}")
            )
    for t in range(num_tables - len(tables)):
        keys = [f"e{rng.randrange(num_tables * 5)}" for _ in range(rows)]
        tables.append(
            Table(["key", "city", f"metric_{t % 7}"], random_rows(keys), name=f"t{t:05d}")
        )
    # The mid-run ingest payload: joins hot query 0 hard (80% of its
    # keys), so v_new answers for hot_0 must differ from v_old answers.
    plant = Table(
        ["key", "city", "planted_metric"],
        random_rows(hot_keys[0][: (rows * 4) // 5]
                    + [f"e{rng.randrange(num_tables * 5)}" for _ in range(rows // 5)]),
        name="join_planted",
    )
    return DataLake(tables), hot, unique, plant


def request_sequence(hot, unique, total: int, seed: int = 7):
    """The 80/20 repeated/unique closed-loop schedule (seeded)."""
    rng = random.Random(seed)
    sequence = []
    unique_cycle = iter(unique * ((total // max(1, len(unique))) + 2))
    for _ in range(total):
        if rng.random() < 0.8:
            sequence.append(rng.choice(hot))
        else:
            sequence.append(next(unique_cycle))
    return sequence


def build_store(lake: DataLake, directory: Path) -> Path:
    store = LakeStore.create(directory)
    store.ingest(lake)
    roster = Dialite(DataLake()).discoverers.components()
    LakeIndex.from_store(store, roster, lake=store.lake()).save_to_store(store)
    return directory


def payload_bytes(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# The two paths
# ----------------------------------------------------------------------
def run_service(store_path: Path, requests, clients: int = 8, ingest_at: int | None = None,
                plant: Table | None = None):
    """Closed-loop concurrent clients against one warm service; returns
    (seconds, responses in request order, stats snapshot, metrics snapshot)."""
    service = LakeService(
        store=store_path,
        workers=clients,
        queue_depth=max(64, clients * 4),
        cache_capacity=4096,
        batch_window=0.005,
        reload_check_interval=0.05,
    )
    try:
        responses = [None] * len(requests)
        schedule = iter(enumerate(requests))
        lock = threading.Lock()
        # The mid-run ingest is a barrier in the schedule: the worker that
        # draws request `ingest_at` ingests first, and later requests wait
        # for it -- so the run provably serves under both lake versions
        # (earlier requests still in flight finish on the old generation,
        # correctly stamped with its version).
        ingest_done = threading.Event()

        def worker():
            while True:
                with lock:
                    try:
                        index, query = next(schedule)
                    except StopIteration:
                        return
                if ingest_at is not None:
                    if index == ingest_at:
                        service.ingest([plant])
                        ingest_done.set()
                    elif index > ingest_at:
                        ingest_done.wait()
                responses[index] = service.discover(query, k=K, query_column=COLUMN)

        threads = [threading.Thread(target=worker) for _ in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start
        return seconds, responses, service.stats_snapshot(), service.metrics_snapshot()
    finally:
        service.close()


def run_cold_sequential(store_path: Path, requests):
    """The pre-service shape: every request pays a fresh Dialite open."""
    payloads = []
    start = time.perf_counter()
    for query in requests:
        pipeline = Dialite.open(store_path).fit()
        payloads.append(
            oracle_discover_payload(pipeline, query, k=K, query_column=COLUMN)
        )
    return time.perf_counter() - start, payloads


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------
def phase_throughput(store_path: Path, hot, unique, total: int, clients: int) -> dict:
    requests = request_sequence(hot, unique, total)
    service_s, responses, stats, metrics = run_service(store_path, requests, clients=clients)
    cold_s, cold_payloads = run_cold_sequential(store_path, requests)
    identical = all(
        payload_bytes(response.payload) == payload_bytes(cold)
        for response, cold in zip(responses, cold_payloads)
    )
    return {
        "requests": total,
        "clients": clients,
        "service_s": round(service_s, 4),
        "cold_s": round(cold_s, 4),
        "speedup": round(cold_s / max(service_s, 1e-12), 2),
        "identical": identical,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "batches": stats["batches"],
        "batched_requests": stats["batched_requests"],
        "p95_discover_ms": stats["latency"].get("discover", {}).get("p95_ms"),
        "metrics": metrics,
    }


def phase_consistency(store_path: Path, hot, unique, plant, total: int, clients: int) -> dict:
    """Mixed workload with a mid-run ingest; zero-staleness verification."""
    requests = request_sequence(hot, unique, total, seed=13)
    version_0 = LakeStore.open(store_path).lake_version
    distinct = hot + unique
    oracle_v0_pipeline = Dialite.open(store_path).fit()
    # Per-version oracle: query name -> the payload a fresh pipeline
    # opened at that exact version serves for it.
    oracle_by_query = {
        version_0: {
            q.name: payload_bytes(
                oracle_discover_payload(oracle_v0_pipeline, q, k=K, query_column=COLUMN)
            )
            for q in distinct
        }
    }

    seconds, responses, stats, _metrics = run_service(
        store_path, requests, clients=clients, ingest_at=total // 2, plant=plant
    )

    version_1 = LakeStore.open(store_path).lake_version
    oracle_v1_pipeline = Dialite.open(store_path).fit()
    oracle_by_query[version_1] = {
        q.name: payload_bytes(
            oracle_discover_payload(oracle_v1_pipeline, q, k=K, query_column=COLUMN)
        )
        for q in distinct
    }

    stale = 0
    versions_seen = set()
    for query, response in zip(requests, responses):
        versions_seen.add(response.lake_version)
        expected = oracle_by_query[response.lake_version][query.name]
        if payload_bytes(response.payload) != expected:
            stale += 1
    hot0_changed = (
        oracle_by_query[version_0][hot[0].name]
        != oracle_by_query[version_1][hot[0].name]
    )
    return {
        "requests": total,
        "seconds": round(seconds, 4),
        "stale_responses": stale,
        "versions_observed": sorted(versions_seen),
        "both_versions_served": versions_seen == {version_0, version_1},
        "ingest_changes_hot_answer": hot0_changed,
        "reloads": stats["reloads"],
        "ingests": stats["ingests"],
    }


def socket_smoke(store_path: Path, hot, plant) -> dict:
    """End-to-end over TCP: the `make serve-smoke` client session."""
    service = LakeService(store=store_path, workers=2, batch_window=0.005,
                          reload_check_interval=0.05)
    server = LakeServer(service, port=0)
    server.start()
    try:
        client = ServiceClient(server.address)
        assert client.ping()
        version_0 = client.version()
        first = client.discover(hot[0], k=K, column=COLUMN)
        again = client.discover(hot[0], k=K, column=COLUMN)
        assert not first["cached"] and again["cached"], "second call must hit the cache"
        assert first["payload"] == again["payload"]
        assert first["lake_version"] == version_0

        report = client.ingest([plant])
        assert report["added"] == [plant.name]
        requery = client.discover(hot[0], k=K, column=COLUMN)
        assert requery["lake_version"] == report["lake_version"] > version_0
        assert requery["payload"] != first["payload"], (
            "planted ingest must change the hot answer"
        )

        integrated = client.integrate(query=hot[0], k=3, column=COLUMN)
        assert integrated["payload"]["table"]["rows"], "integrate served no facts"

        stats = client.stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 2
        assert stats["reloads"] >= 1 and stats["ingests"] == 1
        assert stats["requests"] >= 4
        client.shutdown()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and not service._closed:
            time.sleep(0.02)
        assert service._closed, "wire shutdown must close the service"
        return {
            "socket_ok": True,
            "cache_hit_over_wire": bool(again["cached"]),
            "version_before": version_0,
            "version_after": requery["lake_version"],
            "stats": {k: stats[k] for k in (
                "requests", "hits", "misses", "reloads", "ingests",
                "rejected_overload", "rejected_deadline",
            )},
        }
    finally:
        server.close()


def run_suite(num_tables: int, total: int, clients: int, smoke: bool) -> dict:
    lake, hot, unique, plant = make_workload(num_tables)
    base = Path(tempfile.mkdtemp(prefix="bench_service_"))
    try:
        store_a = build_store(lake, base / "throughput.store")
        throughput = phase_throughput(store_a, hot, unique, total, clients)
        store_b = build_store(lake, base / "consistency.store")
        consistency = phase_consistency(store_b, hot, unique, plant, total, clients)
        results = {
            "suite": "service",
            "smoke": smoke,
            "tables": num_tables,
            "hot_queries": len(hot),
            "unique_queries": len(unique),
            "throughput": throughput,
            "consistency": consistency,
        }
        if smoke:
            store_c = build_store(lake, base / "smoke.store")
            results["socket"] = socket_smoke(store_c, hot, plant)
        return results
    finally:
        shutil.rmtree(base, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=400)
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--smoke", action="store_true",
                        help="small scale, no speed gate, plus the TCP smoke "
                        "(the `make serve-smoke` CI mode)")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument("--check", action="store_true",
                        help="fail unless warm serving beats sequential cold "
                        "calls by >= 3x (full scale only; correctness "
                        "assertions always run)")
    args = parser.parse_args(argv)

    num_tables = 60 if args.smoke else args.tables
    total = 24 if args.smoke else args.requests
    clients = 4 if args.smoke else args.clients
    results = run_suite(num_tables, total, clients, smoke=args.smoke)

    throughput = results["throughput"]
    consistency = results["consistency"]
    print(
        f"{results['tables']} tables, {throughput['requests']} requests "
        f"({results['hot_queries']} hot / {results['unique_queries']} unique, 80/20), "
        f"{throughput['clients']} clients: cold {throughput['cold_s']:.3f}s, "
        f"service {throughput['service_s']:.3f}s -> {throughput['speedup']}x "
        f"(identical: {throughput['identical']}, hits {throughput['hits']}, "
        f"batched {throughput['batched_requests']})"
    )
    print(
        f"consistency across mid-run ingest: versions {consistency['versions_observed']}, "
        f"stale responses {consistency['stale_responses']}, "
        f"hot answer changed: {consistency['ingest_changes_hot_answer']}"
    )
    if args.smoke:
        print(f"socket smoke: {json.dumps(results['socket']['stats'])}")
    print(json.dumps(results))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results, indent=2), encoding="utf-8")
        print(f"written: {args.json}")

    failures = []
    if not throughput["identical"]:
        failures.append("service payloads differ from the sequential cold baseline")
    if consistency["stale_responses"]:
        failures.append(f"{consistency['stale_responses']} stale responses across ingest")
    if not consistency["ingest_changes_hot_answer"]:
        failures.append("ingest did not change the hot answer (staleness check vacuous)")
    if not consistency["both_versions_served"]:
        failures.append(
            f"expected both lake versions in responses, saw "
            f"{consistency['versions_observed']}"
        )
    if args.smoke and not results["socket"]["socket_ok"]:
        failures.append("socket smoke failed")
    if args.check and not args.smoke and throughput["speedup"] < 3.0:
        failures.append(f"speedup {throughput['speedup']}x < 3.0x")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    if args.check and not args.smoke:
        print("acceptance ok: warm cached+batched serving >= 3x sequential cold "
              "calls, byte-identical version-stamped results, zero stale "
              "responses across a concurrent ingest")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
