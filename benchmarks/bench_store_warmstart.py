"""Persistent-store warm start vs cold profile+sketch rebuild.

The claim under test (ISSUE 2 acceptance): at 1k synthetic tables, opening
a prebuilt :class:`repro.store.LakeStore` and serving a discovery query
(``Dialite.open(store).fit()`` + ``discover``) is **>= 5x faster** than the
cold path that re-scans every column, rebuilds every token set and
re-hashes every MinHash/HLL sketch (``Dialite(lake).fit()`` + ``discover``)
-- i.e. the cold-start cost is paid once per lake version, not once per
process.

Two entry points:

* standalone -- ``python benchmarks/bench_store_warmstart.py [--smoke]
  [--json out.json] [--check]`` prints the numbers and a JSON document;
* pytest -- the small ``test_*`` functions below run a time-free
  round-trip smoke (warm results == cold results, zero warm scans), which
  is what ``make ci`` exercises.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import Dialite  # noqa: E402
from repro.datalake import DataLake, LakeIndex  # noqa: E402
from repro.store import LakeStore  # noqa: E402
from repro.table import MISSING, Table  # noqa: E402


# ----------------------------------------------------------------------
# Workload: a lake of small tables over a shared key vocabulary, so the
# join discoverers have real overlap structure to index.
# ----------------------------------------------------------------------
def make_lake(num_tables: int, rows: int = 24, seed: int = 11) -> DataLake:
    rng = random.Random(seed)
    categories = [f"cat_{i}" for i in range(40)]
    tables = []
    for t in range(num_tables):
        table_rows = []
        for r in range(rows):
            key = f"entity {rng.randrange(num_tables * 5)}"
            category = rng.choice(categories)
            value = rng.randrange(10_000) if rng.random() > 0.05 else MISSING
            table_rows.append((key, category, value))
        tables.append(
            Table(["key", "category", f"metric_{t % 7}"], table_rows, name=f"t{t:05d}")
        )
    return DataLake(tables)


def make_query(num_tables: int, rows: int = 24, seed: int = 11) -> Table:
    # The query reuses the lake's key vocabulary: overlapping domains.
    rng = random.Random(seed + 1)
    return Table(
        ["key", "score"],
        [(f"entity {rng.randrange(num_tables * 5)}", rng.random()) for _ in range(rows)],
        name="bench_query",
    )


# ----------------------------------------------------------------------
# The two paths
# ----------------------------------------------------------------------
def run_cold(num_tables: int, k: int) -> tuple[float, list]:
    """Fresh tables, full profile + sketch + index rebuild, one discover."""
    lake = make_lake(num_tables)  # untimed: both paths need the data to exist
    query = make_query(num_tables)
    start = time.perf_counter()
    pipeline = Dialite(lake).fit()
    outcome = pipeline.discover(query, k=k, query_column="key")
    elapsed = time.perf_counter() - start
    return elapsed, [(r.table_name, round(r.score, 6)) for r in outcome.merged]


def prepare_store(num_tables: int, store_dir: Path) -> None:
    """The once-per-lake-version offline step (untimed)."""
    lake = make_lake(num_tables)
    store = LakeStore.create(store_dir)
    store.ingest(lake)
    roster = Dialite(DataLake()).discoverers.components()
    LakeIndex(store.lake(), roster).build().save_to_store(store)


def run_warm(
    num_tables: int, store_dir: Path, k: int
) -> tuple[float, float, list, int]:
    """Open the store, hydrate indexes, one discover; returns the two
    warm phases separately -- deserialization (open + fit: manifest,
    stats, sketches, persisted indexes and postings off disk) vs serving
    (the discover itself) -- plus the number of raw-cell scans the warm
    run performed (must be 0)."""
    query = make_query(num_tables)
    start = time.perf_counter()
    pipeline = Dialite.open(store_dir).fit()
    opened = time.perf_counter()
    outcome = pipeline.discover(query, k=k, query_column="key")
    finished = time.perf_counter()
    scans = sum(pipeline.lake.stats.scan_counts().values())
    return (
        opened - start,
        finished - opened,
        [(r.table_name, round(r.score, 6)) for r in outcome.merged],
        scans,
    )


def run_suite(num_tables: int, k: int = 10, repeats: int = 3) -> dict:
    store_dir = Path(tempfile.mkdtemp(prefix="bench_store_")) / "lake.store"
    try:
        prepare_store(num_tables, store_dir)
        store_bytes = sum(
            f.stat().st_size for f in store_dir.rglob("*") if f.is_file()
        )
        # Best-of-N on both sides (same policy as bench_table_engine): each
        # repeat is a full fresh run -- cold rebuilds from fresh tables,
        # warm re-opens the store -- so the comparison is steady-state-free.
        cold_s = float("inf")
        warm_s = float("inf")
        warm_open_s = float("inf")
        warm_discover_s = float("inf")
        for _ in range(repeats):
            seconds, cold_results = run_cold(num_tables, k)
            cold_s = min(cold_s, seconds)
            open_s, discover_s, warm_results, warm_scans = run_warm(
                num_tables, store_dir, k
            )
            warm_s = min(warm_s, open_s + discover_s)
            warm_open_s = min(warm_open_s, open_s)
            warm_discover_s = min(warm_discover_s, discover_s)
    finally:
        shutil.rmtree(store_dir.parent, ignore_errors=True)
    return {
        "suite": "store_warmstart",
        "tables": num_tables,
        "k": k,
        "repeats": repeats,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_open_s": round(warm_open_s, 4),
        "warm_discover_s": round(warm_discover_s, 4),
        "speedup": round(cold_s / max(warm_s, 1e-12), 2),
        "warm_scan_count": warm_scans,
        "results_identical": cold_results == warm_results,
        "store_bytes": store_bytes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=1000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="60 tables, 1 repeat, no acceptance check (the CI mode)")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument("--check", action="store_true",
                        help="fail unless warm is >= 5x faster than cold")
    args = parser.parse_args(argv)

    num_tables = 60 if args.smoke else args.tables
    results = run_suite(num_tables, repeats=1 if args.smoke else args.repeats)

    print(
        f"{results['tables']} tables: cold {results['cold_s']:.3f}s, "
        f"warm {results['warm_s']:.3f}s "
        f"(open {results['warm_open_s']:.3f}s + discover "
        f"{results['warm_discover_s']:.3f}s) -> {results['speedup']}x "
        f"(warm scans: {results['warm_scan_count']}, "
        f"identical results: {results['results_identical']}, "
        f"store: {results['store_bytes'] / 1e6:.1f} MB)"
    )
    print(json.dumps(results))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results, indent=2), encoding="utf-8")
        print(f"written: {args.json}")

    failures = []
    if not results["results_identical"]:
        failures.append("warm results differ from cold results")
    if results["warm_scan_count"] != 0:
        failures.append(f"warm run scanned {results['warm_scan_count']} columns")
    if args.check and results["speedup"] < 5.0:
        failures.append(f"speedup {results['speedup']}x < 5x")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    if args.check:
        print("acceptance ok: warm open+discover >= 5x faster than cold rebuild")
    return 0


# ----------------------------------------------------------------------
# pytest entry point: the time-free round-trip smoke `make ci` runs
# ----------------------------------------------------------------------
def test_store_roundtrip_smoke(tmp_path):
    store_dir = tmp_path / "lake.store"
    prepare_store(24, store_dir)
    cold_s, cold_results = run_cold(24, k=5)
    open_s, discover_s, warm_results, warm_scans = run_warm(24, store_dir, k=5)
    assert warm_results == cold_results
    assert warm_scans == 0
    assert cold_results, "the benchmark query should discover something"


if __name__ == "__main__":
    sys.exit(main())
