"""Table-engine micro-benchmark: columnar ops vs the seed's row-major ops.

Times the hot relational operators (hash join, outer union, distinct) and
lake profiling at 1k / 10k rows, against a row-major **reference
implementation** transcribed from the seed engine, and checks the PR's
acceptance floor: >= 2x on hash join and outer union at 10k rows.

Two entry points:

* standalone -- ``python benchmarks/bench_table_engine.py [--smoke]
  [--json out.json]`` prints a human table plus a JSON document (the same
  shape the other ``bench_*`` scripts emit through pytest-benchmark);
* pytest -- ``pytest benchmarks/bench_table_engine.py --benchmark-only``
  runs the columnar side under pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datalake import DataLake, profile_lake  # noqa: E402
from repro.table import Table, ops  # noqa: E402
from repro.table.ops import _hashable  # noqa: E402
from repro.table.values import PRODUCED, is_null  # noqa: E402


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def make_pair(num_rows: int, seed: int = 7) -> tuple[Table, Table]:
    """A joinable left/right pair with ~1 match per key and some misses."""
    rng = random.Random(seed)
    keys = [f"k{rng.randrange(num_rows)}" for _ in range(num_rows)]
    left = Table(
        ["k", "a", "b", "c"],
        [(keys[i], i, float(i) / 3.0, f"v{i % 97}") for i in range(num_rows)],
        name="L",
    )
    right = Table(
        ["k", "x", "y"],
        [(keys[(i * 7) % num_rows], i * 2, f"w{i % 89}") for i in range(num_rows)],
        name="R",
    )
    # Pre-materialize the row views so the row-major reference isn't charged
    # for the lazy transpose the columnar engine skips.
    left.rows, right.rows
    return left, right


def make_union_set(num_rows: int, seed: int = 7) -> list[Table]:
    left, right = make_pair(num_rows, seed)
    third = Table(
        ["k", "z"],
        [(f"k{i}", i % 5) for i in range(num_rows)],
        name="Z",
    )
    third.rows
    return [left, right, third]


def make_lake(num_rows: int, seed: int = 7) -> DataLake:
    return DataLake(make_union_set(num_rows, seed))


# ----------------------------------------------------------------------
# Row-major reference (transcribed from the seed engine)
# ----------------------------------------------------------------------
def _ref_key_of(row, positions):
    key = []
    for position in positions:
        cell = row[position]
        if is_null(cell):
            return None
        key.append(_hashable(cell))
    return tuple(key)


def rowmajor_full_outer_join(left: Table, right: Table) -> Table:
    on = [c for c in left.columns if right.has_column(c)]
    left_key_pos = [left.column_index(c) for c in on]
    right_key_pos = [right.column_index(c) for c in on]
    right_extra = [c for c in right.columns if c not in on]
    right_extra_pos = [right.column_index(c) for c in right_extra]
    header = list(left.columns) + right_extra
    index: dict = {}
    for i, row in enumerate(right.rows):
        key = _ref_key_of(row, right_key_pos)
        if key is not None:
            index.setdefault(key, []).append(i)
    matched: set[int] = set()
    rows = []
    for row in left.rows:
        key = _ref_key_of(row, left_key_pos)
        matches = index.get(key, []) if key is not None else []
        if matches:
            for j in matches:
                matched.add(j)
                right_row = right.rows[j]
                rows.append(row + tuple(right_row[p] for p in right_extra_pos))
        else:
            rows.append(row + (PRODUCED,) * len(right_extra))
    left_pos = {c: i for i, c in enumerate(left.columns)}
    for j, right_row in enumerate(right.rows):
        if j in matched:
            continue
        out = [PRODUCED] * len(left.columns)
        for column, right_p in zip(on, right_key_pos):
            out[left_pos[column]] = right_row[right_p]
        out.extend(right_row[p] for p in right_extra_pos)
        rows.append(tuple(out))
    return Table(header, rows, name="joined")


def rowmajor_outer_union(tables: list[Table]) -> Table:
    header: list[str] = []
    seen: set[str] = set()
    for table in tables:
        for column in table.columns:
            if column not in seen:
                seen.add(column)
                header.append(column)
    rows = []
    for table in tables:
        positions = {c: i for i, c in enumerate(table.columns)}
        for row in table.rows:
            rows.append(
                tuple(
                    row[positions[c]] if c in positions else PRODUCED
                    for c in header
                )
            )
    return Table(header, rows, name="outer_union")


def rowmajor_distinct(table: Table) -> Table:
    seen: set = set()
    rows = []
    for row in table.rows:
        key = tuple(_hashable(cell) for cell in row)
        if key not in seen:
            seen.add(key)
            rows.append(row)
    return Table(table.columns, rows, name=table.name)


def rowmajor_profile(lake) -> Table:
    """The seed profiler: fresh per-column scans and fresh HyperLogLogs."""
    from repro.sketch.hll import HyperLogLog
    from repro.text.normalize import numeric_fraction

    header = ["table", "column", "dtype", "rows", "non_null", "distinct_est",
              "numeric_frac", "examples"]
    rows = []
    for table in lake.values():
        for spec in table.schema:
            values = [row[table.column_index(spec.name)] for row in table.rows]
            non_null = [v for v in values if not is_null(v)]
            sketch = HyperLogLog(precision=12)
            for value in non_null:
                sketch.add(value)
            examples = list(dict.fromkeys(str(v) for v in non_null))[:3]
            rows.append(
                (table.name, spec.name, spec.dtype, len(values), len(non_null),
                 len(sketch), round(numeric_fraction(non_null), 3),
                 ", ".join(examples))
            )
    return Table(header, rows, name="lake_profile")


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_suite(sizes: list[int], repeats: int) -> dict:
    results: dict = {"suite": "table_engine", "sizes": {}}
    for num_rows in sizes:
        left, right = make_pair(num_rows)
        union_set = make_union_set(num_rows)
        union_table = ops.outer_union(union_set)
        union_table.rows  # pre-materialize for the row-major distinct

        cases = {
            "hash_join": (
                lambda: rowmajor_full_outer_join(left, right),
                lambda: ops.full_outer_join(left, right),
            ),
            "outer_union": (
                lambda: rowmajor_outer_union(union_set),
                lambda: ops.outer_union(union_set),
            ),
            "distinct": (
                lambda: rowmajor_distinct(union_table),
                lambda: ops.distinct(union_table),
            ),
            "profile": (
                lambda: rowmajor_profile(make_lake(num_rows)),
                # Cold columnar profile: fresh tables so the stats cache
                # is charged for its single pass.
                lambda: profile_lake(make_lake(num_rows)),
            ),
        }
        point: dict = {}
        for case, (rowmajor, columnar) in cases.items():
            seconds_rowmajor = _best_of(rowmajor, repeats)
            seconds_columnar = _best_of(columnar, repeats)
            point[case] = {
                "rowmajor_s": round(seconds_rowmajor, 6),
                "columnar_s": round(seconds_columnar, 6),
                "speedup": round(seconds_rowmajor / max(seconds_columnar, 1e-12), 2),
            }
        results["sizes"][str(num_rows)] = point
    return results


def check_acceptance(results: dict, floor: float = 2.0) -> list[str]:
    """The PR's floor: >= 2x on hash join and outer union at the largest size."""
    largest = str(max(int(s) for s in results["sizes"]))
    failures = []
    for case in ("hash_join", "outer_union"):
        speedup = results["sizes"][largest][case]["speedup"]
        if speedup < floor:
            failures.append(f"{case}@{largest}: {speedup}x < {floor}x")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="1k rows only, 2 repeats (the CI mode)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the >= 2x acceptance check")
    args = parser.parse_args(argv)

    sizes = [1000] if args.smoke else [1000, 10000]
    repeats = 2 if args.smoke else args.repeats
    results = run_suite(sizes, repeats)

    print(f"{'rows':>6} {'case':<12} {'row-major':>11} {'columnar':>11} {'speedup':>8}")
    for size, cases in results["sizes"].items():
        for case, numbers in cases.items():
            print(
                f"{size:>6} {case:<12} {numbers['rowmajor_s']:>10.4f}s "
                f"{numbers['columnar_s']:>10.4f}s {numbers['speedup']:>7.2f}x"
            )
    print()
    print(json.dumps(results))
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2), encoding="utf-8")
        print(f"written: {args.json}")

    if not args.no_check and not args.smoke:
        failures = check_acceptance(results)
        if failures:
            print("ACCEPTANCE FAILED: " + "; ".join(failures))
            return 1
        print("acceptance ok: >= 2x on hash join + outer union at 10k rows")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry points (columnar side only)
# ----------------------------------------------------------------------
def test_columnar_join_10k(benchmark):
    left, right = make_pair(10_000)
    result = benchmark(ops.full_outer_join, left, right)
    assert result.num_rows >= 10_000


def test_columnar_outer_union_10k(benchmark):
    tables = make_union_set(10_000)
    result = benchmark(ops.outer_union, tables)
    assert result.num_rows == 30_000


def test_columnar_distinct_10k(benchmark):
    union_table = ops.outer_union(make_union_set(10_000))
    result = benchmark(ops.distinct, union_table)
    assert 0 < result.num_rows <= union_table.num_rows


def test_speedup_floor():
    """The acceptance criterion, pinned as a plain test (3 repeats)."""
    results = run_suite([10_000], repeats=3)
    assert not check_acceptance(results), check_acceptance(results)


if __name__ == "__main__":
    sys.exit(main())
