"""Candidate-engine fan-out search vs the full-scan baseline.

The claim under test (ISSUE 3 acceptance): at 2k synthetic tables, a
fan-out ``LakeIndex.search`` (every discoverer retrieving through the
shared :class:`repro.candidates.CandidateEngine`) is **>= 4x faster**
than the same fan-out with the engine forced exhaustive (every
discoverer scoring every lake table -- the pre-refactor shape), while
the top-k result sets stay **byte-identical**, and a warm
``Dialite.open`` serves the same queries from the store's persisted
postings artifact with **zero** posting-index rebuild.

Two entry points:

* standalone -- ``python benchmarks/bench_candidates.py [--smoke]
  [--json out.json] [--check]`` prints the numbers and a JSON document;
* pytest -- the ``test_*`` functions below run a time-free equivalence
  smoke (engine results == full-scan results, warm postings load), which
  is what ``make ci`` exercises via ``make candidates-smoke``.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import Dialite  # noqa: E402
from repro.datalake import DataLake, LakeIndex, seeds  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.store import LakeStore  # noqa: E402
from repro.table import MISSING, Table  # noqa: E402


# ----------------------------------------------------------------------
# Workload: single-token join keys over a wide vocabulary (so posting
# lists stay short) plus a city column (so SANTOS's KB channels engage).
# Each query gets a handful of *planted* joinable tables sharing most of
# its keys, so the sketch prefilter has real high-containment matches to
# retrieve -- everything else is background the engine should skip.
# ----------------------------------------------------------------------
def make_workload(
    num_tables: int, num_queries: int = 4, rows: int = 24, seed: int = 11
) -> tuple[DataLake, list[Table]]:
    rng = random.Random(seed)
    cities = list(seeds.CITIES)

    def random_rows(keys: list[str]) -> list[tuple]:
        return [
            (
                key,
                rng.choice(cities),
                rng.randrange(10_000) if rng.random() > 0.05 else MISSING,
            )
            for key in keys
        ]

    queries = []
    query_keys: list[list[str]] = []
    for q in range(num_queries):
        keys = [f"e{rng.randrange(num_tables * 5)}" for _ in range(rows)]
        query_keys.append(keys)
        queries.append(
            Table(
                ["key", "city", "score"],
                [(key, rng.choice(cities), round(rng.random(), 4)) for key in keys],
                name=f"bench_query_{q}",
            )
        )

    tables = []
    planted = 0
    for q, keys in enumerate(query_keys):
        for j in range(3):  # three joinable tables per query (60% key overlap)
            shared = keys[: (rows * 3) // 5]
            fresh = [f"e{rng.randrange(num_tables * 5)}" for _ in range(rows - len(shared))]
            tables.append(
                Table(
                    ["key", "city", f"metric_{j}"],
                    random_rows(shared + fresh),
                    name=f"join_{q}_{j}",
                )
            )
            planted += 1
    for t in range(num_tables - planted):
        keys = [f"e{rng.randrange(num_tables * 5)}" for _ in range(rows)]
        tables.append(
            Table(["key", "city", f"metric_{t % 7}"], random_rows(keys), name=f"t{t:05d}")
        )
    return DataLake(tables), queries


def build_index(lake: DataLake) -> LakeIndex:
    """The default discoverer roster (SANTOS + LSH Ensemble + JOSIE) over
    one shared engine -- the production fan-out configuration."""
    roster = Dialite(DataLake()).discoverers.components()
    return LakeIndex(lake, roster).build()


# ----------------------------------------------------------------------
# The two paths: engine-backed retrieval vs forced exhaustive scoring
# ----------------------------------------------------------------------
def run_fanout(index: LakeIndex, queries: list[Table], k: int) -> tuple[float, list]:
    """Time the fan-out searches; returns (seconds, comparable results)."""
    results = []
    start = time.perf_counter()
    for query in queries:
        per_discoverer = index.search(query, k=k, query_column="key")
        results.append(
            {
                name: [(r.table_name, round(r.score, 9)) for r in found]
                for name, found in per_discoverer.items()
            }
        )
    return time.perf_counter() - start, results


#: Roster members whose spec guarantees identical top-k vs a full scan.
#: LSH Ensemble's banded retrieval is declared lossy (see its spec note):
#: its contract is subset-with-bounded-scores, checked separately.
IDENTICAL_CONTRACT = {"santos", "josie"}


def contract_holds(engine_results: list, fullscan_results: list) -> bool:
    """Every discoverer's declared engine-vs-full-scan contract, per query."""
    for engine_query, full_query in zip(engine_results, fullscan_results):
        for name, engine_found in engine_query.items():
            full_found = full_query[name]
            if name in IDENTICAL_CONTRACT:
                if engine_found != full_found:
                    return False
            else:
                full_scores = dict(full_found)
                for table, score in engine_found:
                    if table not in full_scores or score > full_scores[table]:
                        return False
    return True


def run_suite(num_tables: int, k: int = 10, repeats: int = 3) -> dict:
    # A fresh registry so the record's metrics cover exactly this run.
    obs_metrics.reset_global_registry()
    lake, queries = make_workload(num_tables)
    index = build_index(lake)
    engine = index.engine

    engine_s = float("inf")
    fullscan_s = float("inf")
    engine_results = fullscan_results = None
    scored: dict[str, int] = {}
    for _ in range(repeats):
        engine.force_exhaustive = False
        seconds, engine_results = run_fanout(index, queries, k)
        engine_s = min(engine_s, seconds)
        scored = {
            name: report["scored"]
            for name, report in index.retrieval_reports().items()
        }
        engine.force_exhaustive = True
        seconds, fullscan_results = run_fanout(index, queries, k)
        fullscan_s = min(fullscan_s, seconds)
    engine.force_exhaustive = False

    # Warm start: persist lake + indexes + postings, reopen, assert the
    # posting channels hydrate (no rebuild) and serve identical results.
    store_dir = Path(tempfile.mkdtemp(prefix="bench_candidates_")) / "lake.store"
    try:
        store = LakeStore.create(store_dir)
        store.ingest(lake)
        index.save_to_store(store)
        warm = Dialite.open(store_dir).fit()
        warm_engine = warm.index.engine
        _, warm_results = run_fanout(warm.index, queries, k)
        warm_loaded = warm_engine.loaded_from_store
        warm_rebuilds = warm_engine.build_count
    finally:
        shutil.rmtree(store_dir.parent, ignore_errors=True)

    return {
        "suite": "candidates",
        "tables": num_tables,
        "k": k,
        "queries": len(queries),
        "repeats": repeats,
        "engine_s": round(engine_s, 4),
        "fullscan_s": round(fullscan_s, 4),
        "speedup": round(fullscan_s / max(engine_s, 1e-12), 2),
        "results_identical": engine_results == fullscan_results,
        "contract_ok": contract_holds(engine_results, fullscan_results),
        "warm_results_identical": warm_results == engine_results,
        "warm_postings_loaded": warm_loaded,
        "warm_posting_rebuilds": warm_rebuilds,
        "candidates_scored_last_query": scored,
        "metrics": obs_metrics.global_registry().snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=2000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="300 tables, 2 repeats, relaxed 1.5x gate (the CI mode)")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the engine fan-out beats full scan "
                        "by the gate (6x full; 1.5x smoke, where fixed "
                        "per-query overhead dominates the tiny lake)")
    args = parser.parse_args(argv)

    num_tables = 300 if args.smoke else args.tables
    # Full gate raised from 4.0 with the segment-v2 PR's vectorized
    # posting probe (concatenate + bincount merges); measured ~13x.
    gate = 1.5 if args.smoke else 6.0
    results = run_suite(num_tables, repeats=2 if args.smoke else args.repeats)

    print(
        f"{results['tables']} tables, {results['queries']} queries: "
        f"full-scan {results['fullscan_s']:.3f}s, engine {results['engine_s']:.3f}s "
        f"-> {results['speedup']}x (identical: {results['results_identical']}, "
        f"warm identical: {results['warm_results_identical']}, "
        f"warm posting rebuilds: {results['warm_posting_rebuilds']})"
    )
    print("candidates scored per discoverer (last query): "
          + json.dumps(results["candidates_scored_last_query"]))
    print(json.dumps(results))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results, indent=2), encoding="utf-8")
        print(f"written: {args.json}")

    failures = []
    if not results["contract_ok"]:
        failures.append(
            "engine results violate a declared contract (identity for "
            "josie/santos, subset-with-bounded-scores for lsh_ensemble)"
        )
    if not results["warm_results_identical"]:
        failures.append("warm-start results differ")
    if not results["warm_postings_loaded"]:
        failures.append("warm start did not load the persisted postings artifact")
    if results["warm_posting_rebuilds"] != 0:
        failures.append(
            f"warm start rebuilt posting channels {results['warm_posting_rebuilds']} times"
        )
    if args.check and results["speedup"] < gate:
        failures.append(f"speedup {results['speedup']}x < {gate}x")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    if args.check:
        print(f"acceptance ok: engine fan-out >= {gate}x faster than full scan, "
              f"identical top-k, warm postings load with zero rebuild")
    return 0


# ----------------------------------------------------------------------
# pytest entry points: the time-free equivalence smoke `make ci` runs
# ----------------------------------------------------------------------
def test_candidates_equivalence_smoke(tmp_path):
    lake, queries = make_workload(80, num_queries=2)
    index = build_index(lake)
    _, engine_results = run_fanout(index, queries, k=5)
    index.engine.force_exhaustive = True
    _, fullscan_results = run_fanout(index, queries, k=5)
    index.engine.force_exhaustive = False
    assert contract_holds(engine_results, fullscan_results)
    # On this fixed workload the stronger property also holds: no LSH
    # band miss, so the fan-out is byte-identical end to end.
    assert engine_results == fullscan_results
    assert any(any(found for found in per_query.values()) for per_query in engine_results)


def test_candidates_warm_postings_smoke(tmp_path):
    lake, queries = make_workload(40, num_queries=1)
    index = build_index(lake)
    _, cold_results = run_fanout(index, queries, k=5)
    store = LakeStore.create(tmp_path / "lake.store")
    store.ingest(lake)
    index.save_to_store(store)
    warm = Dialite.open(tmp_path / "lake.store").fit()
    _, warm_results = run_fanout(warm.index, queries, k=5)
    assert warm_results == cold_results
    assert warm.index.engine.loaded_from_store
    assert warm.index.engine.build_count == 0


if __name__ == "__main__":
    sys.exit(main())
