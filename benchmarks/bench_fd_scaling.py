"""E8 -- the ALITE speed claim: "correct and faster than existing FD
algorithms".

Sweeps the number of tables and rows on pre-aligned synthetic fragment sets
and times AliteFD (indexed complementation) against NestedLoopFD (the
pre-ALITE pass-based baseline) and ParallelFD (component decomposition).
Expected shape: ALITE and ParallelFD beat NestedLoop with a widening gap;
all three produce identical relations (asserted).
"""

from __future__ import annotations

import time

import pytest

from repro.datalake.synth import build_integration_set
from repro.integration import AliteFD, NestedLoopFD, ParallelFD, normalized_key

from conftest import print_header


def _values(result):
    return sorted(normalized_key(row) for row in result.rows)


def _sweep_point(num_tables: int, rows: int):
    return build_integration_set(
        num_tables=num_tables,
        rows_per_table=rows,
        num_attributes=8,
        attributes_per_table=3,
        key_pool_size=rows * 2,
        null_rate=0.08,
        seed=17,
    )


@pytest.mark.parametrize("num_tables", [2, 4, 6, 8])
def test_alite_scaling_tables(benchmark, num_tables):
    tables = _sweep_point(num_tables, rows=60)
    result = benchmark(AliteFD().integrate, tables)
    assert result.num_rows > 0


@pytest.mark.parametrize("algorithm", [AliteFD, ParallelFD, NestedLoopFD])
def test_algorithm_comparison_fixed_size(benchmark, algorithm):
    tables = _sweep_point(num_tables=6, rows=60)
    result = benchmark(algorithm().integrate, tables)
    assert _values(result) == _values(AliteFD().integrate(tables))


def test_sweep_table_printed(benchmark):
    """The E8 series the paper's claim predicts, as one printed table."""
    rows_of_report = []
    for num_tables in (2, 4, 6, 8):
        tables = _sweep_point(num_tables, rows=50)
        timings = {}
        for algorithm in (AliteFD(), ParallelFD(), NestedLoopFD()):
            start = time.perf_counter()
            result = algorithm.integrate(tables)
            timings[algorithm.name] = time.perf_counter() - start
        rows_of_report.append(
            (num_tables, result.num_rows, timings["alite_fd"],
             timings["parallel_fd"], timings["nested_loop_fd"])
        )

    print_header("E8", "FD runtime sweep (seconds) -- ALITE vs baselines")
    print(f"{'#tables':>8} {'out rows':>9} {'alite':>9} {'parallel':>9} {'nested':>9} {'speedup':>8}")
    for tables, out_rows, alite, parallel, nested in rows_of_report:
        print(
            f"{tables:>8} {out_rows:>9} {alite:>9.4f} {parallel:>9.4f} "
            f"{nested:>9.4f} {nested / max(alite, 1e-9):>7.1f}x"
        )

    # The claim's shape: nested-loop strictly slower at the largest point,
    # and the gap grows with scale.
    first_gap = rows_of_report[0][4] / max(rows_of_report[0][2], 1e-9)
    last_gap = rows_of_report[-1][4] / max(rows_of_report[-1][2], 1e-9)
    assert rows_of_report[-1][4] > rows_of_report[-1][2]
    assert last_gap > first_gap

    benchmark(AliteFD().integrate, _sweep_point(8, rows=50))
