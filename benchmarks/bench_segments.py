"""Segment v2 (binary columnar) vs v1 (JSONL) decode throughput.

The claim under test (ISSUE 6 acceptance): on a decode-dominated
workload at 1k tables -- a warm store serving full-table
materializations, the shape of repeated integrate/export requests --
the v2 binary segment reader is **>= 2x faster** than the v1 JSONL
reader, with cell-identical results and identical discovery output.

Phases measured per format (interleaved in one process, best-of-N):

* ``open_s``    -- ``LakeStore.open``: manifest + lake version check;
* ``hydrate_s`` -- stats hydration for every table (JSON stats files
  are shared by both formats, so this phase is format-independent and
  cached per store instance -- it is reported, not gated);
* ``decode_s``  -- the gated quantity: materialize every table from
  its segment on the warm store (pure segment decode + Table build).

The v2 store is produced from the v1 store with
:meth:`repro.store.LakeStore.migrate`, so the benchmark also exercises
the migration path end to end: same content hashes, same stats files,
same lake version.

Two entry points:

* standalone -- ``python benchmarks/bench_segments.py [--smoke]
  [--json out.json] [--check]``;
* pytest -- ``test_segment_formats_identical`` runs the time-free
  identity assertions at tiny scale.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import Dialite  # noqa: E402
from repro.store import LakeStore  # noqa: E402
from repro.datalake import DataLake  # noqa: E402
from repro.table import MISSING, Table  # noqa: E402


# ----------------------------------------------------------------------
# Workload: open-data-style categorical tables.  Dictionary-coded
# segments shine exactly here -- few distinct values per column, many
# rows -- which is the lake shape the paper's benchmarks (SANTOS /
# TUS open-data crawls) exhibit.
# ----------------------------------------------------------------------
def make_lake(num_tables: int, rows: int, seed: int = 7) -> DataLake:
    rng = random.Random(seed)
    cities = [f"city_{i}" for i in range(40)]
    categories = [f"cat_{i}" for i in range(40)]
    tables = []
    for t in range(num_tables):
        table_rows = []
        for _ in range(rows):
            table_rows.append(
                (
                    rng.choice(cities),
                    rng.choice(categories),
                    1960 + rng.randrange(60),
                    round(rng.random() * 5, 1) if rng.random() > 0.05 else MISSING,
                )
            )
        tables.append(
            Table(
                ["city", "category", "year", "rating"],
                table_rows,
                name=f"t{t:05d}",
            )
        )
    return DataLake(tables)


def make_query(rows: int = 24, seed: int = 7) -> Table:
    rng = random.Random(seed + 1)
    return Table(
        ["city", "score"],
        [(f"city_{rng.randrange(40)}", rng.random()) for _ in range(rows)],
        name="bench_query",
    )


def prepare_stores(
    num_tables: int, rows: int, base_dir: Path
) -> tuple[Path, Path, list[str]]:
    """One lake, two stores: ingest as v1, then copy + migrate to v2 --
    stats are computed once and shared byte-for-byte."""
    lake = make_lake(num_tables, rows)
    v1_dir = base_dir / "lake_v1.store"
    v2_dir = base_dir / "lake_v2.store"
    store = LakeStore.create(v1_dir, segment_format="v1")
    store.ingest(lake)
    shutil.copytree(v1_dir, v2_dir)
    migrated = LakeStore.open(v2_dir, check_sketch=False).migrate(
        segment_format="v2"
    )
    if len(migrated) != num_tables:
        raise AssertionError(
            f"migrate rewrote {len(migrated)} of {num_tables} segments"
        )
    return v1_dir, v2_dir, list(store.table_names)


# ----------------------------------------------------------------------
# Identity: the format must be invisible to every consumer.
# ----------------------------------------------------------------------
def assert_identical(v1_dir: Path, v2_dir: Path, names: list[str]) -> list:
    s1 = LakeStore.open(v1_dir, check_sketch=False)
    s2 = LakeStore.open(v2_dir, check_sketch=False)
    counts = s2.segment_format_counts()
    if {fmt for fmt, n in counts.items() if n} != {"v2"}:
        raise AssertionError(f"migrated store is not all-v2: {counts}")
    for name in names:
        t1 = s1.load_table(name)
        t2 = s2.load_table(name)
        if t1.rows != t2.rows or t1.columns != t2.columns:
            raise AssertionError(f"table {name!r} differs across formats")
    query = make_query()
    results = []
    for store_dir in (v1_dir, v2_dir):
        outcome = Dialite.open(store_dir).fit().discover(
            query, k=10, query_column="city"
        )
        results.append(
            [(r.table_name, round(r.score, 6)) for r in outcome.merged]
        )
    if results[0] != results[1]:
        raise AssertionError("discover results differ across segment formats")
    if not results[0]:
        raise AssertionError("the benchmark query should discover something")
    return results[0]


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def measure(store_dir: Path, names: list[str], repeats: int) -> dict:
    start = time.perf_counter()
    store = LakeStore.open(store_dir, check_sketch=False)
    open_s = time.perf_counter() - start

    start = time.perf_counter()
    for name in names:
        store.table_stats(name)  # hydrates + caches per store instance
    hydrate_s = time.perf_counter() - start

    decode_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for name in names:
            store.load_table(name)
        decode_s = min(decode_s, time.perf_counter() - start)
    return {"open_s": open_s, "hydrate_s": hydrate_s, "decode_s": decode_s}


def run_suite(num_tables: int, rows: int, repeats: int) -> dict:
    base_dir = Path(tempfile.mkdtemp(prefix="bench_segments_"))
    try:
        v1_dir, v2_dir, names = prepare_stores(num_tables, rows, base_dir)
        discovered = assert_identical(v1_dir, v2_dir, names)
        bytes_v1 = sum(
            f.stat().st_size for f in v1_dir.rglob("*.seg.*") if f.is_file()
        )
        bytes_v2 = sum(
            f.stat().st_size for f in v2_dir.rglob("*.seg.*") if f.is_file()
        )
        # Interleave the two formats so drift in machine load hits both.
        timings = {"v1": None, "v2": None}
        for fmt, store_dir in (("v1", v1_dir), ("v2", v2_dir)):
            timings[fmt] = measure(store_dir, names, repeats)
        for fmt, store_dir in (("v2", v2_dir), ("v1", v1_dir)):
            second = measure(store_dir, names, repeats)
            for key in timings[fmt]:
                timings[fmt][key] = min(timings[fmt][key], second[key])
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)
    speedup = timings["v1"]["decode_s"] / max(timings["v2"]["decode_s"], 1e-12)
    return {
        "suite": "segments",
        "tables": num_tables,
        "rows": rows,
        "repeats": repeats,
        "v1": {k: round(v, 4) for k, v in timings["v1"].items()},
        "v2": {k: round(v, 4) for k, v in timings["v2"].items()},
        "decode_speedup": round(speedup, 2),
        "segment_bytes_v1": bytes_v1,
        "segment_bytes_v2": bytes_v2,
        "results_identical": True,  # assert_identical raised otherwise
        "discovered": len(discovered),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=1000)
    parser.add_argument("--rows", type=int, default=512)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N decode passes per interleave leg")
    parser.add_argument("--smoke", action="store_true",
                        help="60 tables x 96 rows, no speed gate (the CI mode)")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument("--check", action="store_true",
                        help="fail unless v2 decode is >= 2x faster than v1")
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_suite(60, 96, repeats=1)
    else:
        results = run_suite(args.tables, args.rows, repeats=args.repeats)

    print(
        f"{results['tables']} tables x {results['rows']} rows: "
        f"v1 decode {results['v1']['decode_s']:.3f}s "
        f"(open {results['v1']['open_s']:.3f}s + hydrate "
        f"{results['v1']['hydrate_s']:.3f}s), "
        f"v2 decode {results['v2']['decode_s']:.3f}s "
        f"(open {results['v2']['open_s']:.3f}s + hydrate "
        f"{results['v2']['hydrate_s']:.3f}s) "
        f"-> {results['decode_speedup']}x "
        f"(segments: {results['segment_bytes_v1'] / 1e6:.1f} MB v1, "
        f"{results['segment_bytes_v2'] / 1e6:.1f} MB v2)"
    )
    print(json.dumps(results))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results, indent=2), encoding="utf-8")
        print(f"written: {args.json}")

    if args.check and results["decode_speedup"] < 2.0:
        print(
            "ACCEPTANCE FAILED: v2 decode speedup "
            f"{results['decode_speedup']}x < 2x"
        )
        return 1
    if args.check:
        print("acceptance ok: v2 segment decode >= 2x v1 at 1k tables")
    return 0


# ----------------------------------------------------------------------
# pytest entry point: time-free identity at tiny scale
# ----------------------------------------------------------------------
def test_segment_formats_identical(tmp_path):
    v1_dir, v2_dir, names = prepare_stores(12, 32, tmp_path)
    assert assert_identical(v1_dir, v2_dir, names)


if __name__ == "__main__":
    sys.exit(main())
