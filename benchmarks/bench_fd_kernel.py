"""Interned FD kernel vs the legacy object kernel (ISSUE 4 acceptance).

The claim under test: on an ~8 tables x 500 rows integration set, the
interned partition-first :class:`AliteFD` (integer-coded tuples, masked
int-vector predicates, packed-int postings, per-component closure) is
**>= 3x faster** than :class:`LegacyAliteFD` -- the pre-PR-4 object-level
kernel kept verbatim as the baseline -- while producing **identical**
output: same cells, same null kinds (``±``/``⊥``), same provenance sets,
same row order.

Two entry points:

* ``python benchmarks/bench_fd_kernel.py [--check] [--json out.json]``
  runs the full-scale gate (best-of-``--repeats`` timings);
* ``python benchmarks/bench_fd_kernel.py --smoke --json out.json`` runs a
  small workload: every correctness assertion, timings recorded to JSON,
  but no hard speed gate (at smoke scale the measurement is dominated by
  jitter) -- this is what ``make ci`` exercises via ``make fd-smoke``.

The same identity assertions are pinned distribution-free (randomized
inputs, incremental prefixes, process-pool dispatch) by
``tests/property/test_fd_kernel_equivalence.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datalake.synth import build_integration_set  # noqa: E402
from repro.integration import AliteFD, LegacyAliteFD, ParallelFD, normalized_key  # noqa: E402
from repro.table.values import is_missing, is_null  # noqa: E402

#: The acceptance gate: interned partition-first kernel over object kernel.
#: Raised from 3.0 with the segment-v2 PR's kernel work (the provenance
#: fold size precheck and the one-sided-mask pair skip); measured ~5.5x.
SPEEDUP_GATE = 4.5

FULL = dict(num_tables=8, rows_per_table=500, num_attributes=10,
            attributes_per_table=4, key_pool_size=1000, null_rate=0.08, seed=7)
SMOKE = dict(num_tables=4, rows_per_table=80, num_attributes=8,
             attributes_per_table=3, key_pool_size=160, null_rate=0.08, seed=7)


def null_kind_grid(result) -> list[tuple]:
    """Per-cell (is-null, is-missing) so ``±`` vs ``⊥`` differences count."""
    return [tuple((is_null(c), is_missing(c)) for c in row) for row in result.rows]


def assert_identical(reference, candidate, label: str) -> None:
    """Cell-, provenance-, null-kind- and row-order-identical outputs.

    Cells are compared by ``==`` *and* by normalized key: Python's
    ``True == 1`` / ``1 == 1.0`` would otherwise let exactly the class of
    bool/int confusion the kernel's discipline guards against slip through
    an ``==``-only gate."""
    assert tuple(candidate.columns) == tuple(reference.columns), f"{label}: header differs"
    assert list(candidate.rows) == list(reference.rows), f"{label}: cells/row order differ"
    assert [normalized_key(r) for r in candidate.rows] == [
        normalized_key(r) for r in reference.rows
    ], f"{label}: cell keys differ (bool/int or num/str confusion)"
    assert null_kind_grid(candidate) == null_kind_grid(reference), f"{label}: null kinds differ"
    assert candidate.provenance == reference.provenance, f"{label}: provenance differs"


def timed(make_integrator, tables, repeats: int):
    """Best-of-*repeats* wall time; a fresh integrator per run so no run
    warms the next one's interner."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        integrator = make_integrator()
        start = time.perf_counter()
        result = integrator.integrate(tables)
        best = min(best, time.perf_counter() - start)
    return best, result


def run(smoke: bool, check: bool, repeats: int, json_path: str | None) -> int:
    scale = SMOKE if smoke else FULL
    tables = build_integration_set(**scale)
    total_rows = sum(t.num_rows for t in tables)
    print(
        f"FD kernel benchmark ({'smoke' if smoke else 'full'}): "
        f"{scale['num_tables']} tables x {scale['rows_per_table']} rows "
        f"({total_rows} input tuples)"
    )

    legacy_seconds, legacy = timed(LegacyAliteFD, tables, repeats)
    interned_instances: list[AliteFD] = []

    def fresh_interned() -> AliteFD:
        interned_instances.append(AliteFD())
        return interned_instances[-1]

    interned_seconds, interned = timed(fresh_interned, tables, repeats)
    stats = interned_instances[-1].last_stats or {}
    parallel_seconds, parallel = timed(
        lambda: ParallelFD(max_workers=2, min_parallel_components=4), tables, repeats
    )

    assert_identical(legacy, interned, "interned AliteFD vs legacy")
    assert_identical(legacy, parallel, "ParallelFD vs legacy")
    print(
        f"  output identical across kernels: {interned.num_rows} facts, "
        f"{stats.get('components', '?')} components, "
        f"domain {stats.get('domain', '?')} values"
    )

    speedup = legacy_seconds / max(interned_seconds, 1e-9)
    print(f"  legacy object kernel : {legacy_seconds:9.3f}s")
    print(f"  interned AliteFD     : {interned_seconds:9.3f}s  ({speedup:.2f}x)")
    print(
        f"  ParallelFD(workers=2): {parallel_seconds:9.3f}s  "
        f"({legacy_seconds / max(parallel_seconds, 1e-9):.2f}x)"
    )

    document = {
        "benchmark": "fd_kernel",
        "mode": "smoke" if smoke else "full",
        "scale": scale,
        "input_tuples": total_rows,
        "output_facts": interned.num_rows,
        "kernel_stats": stats,
        "legacy_seconds": round(legacy_seconds, 6),
        "interned_seconds": round(interned_seconds, 6),
        "parallel2_seconds": round(parallel_seconds, 6),
        "speedup": round(speedup, 3),
        "gate": SPEEDUP_GATE if not smoke else None,
        "identical_output": True,  # the asserts above would have raised
    }
    if json_path:
        path = Path(json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, indent=2), encoding="utf-8")
        print(f"  json: {path}")

    if check and not smoke:
        if speedup < SPEEDUP_GATE:
            print(
                f"GATE FAILED: interned kernel {speedup:.2f}x < {SPEEDUP_GATE}x "
                f"over the legacy object kernel"
            )
            return 1
        print(f"gate ok: {speedup:.2f}x >= {SPEEDUP_GATE}x")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload: correctness + JSON, no speed gate")
    parser.add_argument("--check", action="store_true",
                        help=f"fail unless interned >= {SPEEDUP_GATE}x over legacy")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing (default: 3 full, 1 smoke)")
    parser.add_argument("--json", default=None, help="write the JSON document here")
    args = parser.parse_args()
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    return run(args.smoke, args.check, repeats, args.json)


if __name__ == "__main__":
    sys.exit(main())
