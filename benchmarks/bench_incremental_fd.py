"""E13 -- incremental integration: folding tables into an existing FD result.

ALITE (and DIALITE's demo flow, where a user keeps adding discovered
tables) motivates an incremental mode: ``integrate_incremental(existing,
table)`` must equal the batch FD at every prefix, with the closure
warm-started by the previous result.
"""

from __future__ import annotations

from repro.datalake.synth import build_integration_set
from repro.integration import AliteFD, normalized_key

from conftest import print_header


def _values(result):
    return sorted(normalized_key(row) for row in result.rows)


def _tables():
    return build_integration_set(
        num_tables=6, rows_per_table=40, num_attributes=8,
        attributes_per_table=3, key_pool_size=60, null_rate=0.08, seed=23,
    )


def test_incremental_equals_batch_at_every_prefix(benchmark):
    tables = _tables()
    fd = AliteFD()

    def run_incremental():
        result = fd.integrate([tables[0]])
        for table in tables[1:]:
            result = fd.integrate_incremental(result, table)
        return result

    incremental = benchmark(run_incremental)
    batch = fd.integrate(tables)

    print_header("E13", "incremental FD vs batch FD")
    print(f"  final facts: incremental={incremental.num_rows}, batch={batch.num_rows}")

    assert _values(incremental) == _values(batch)
    # And at every prefix:
    rolling = fd.integrate([tables[0]])
    for i, table in enumerate(tables[1:], start=2):
        rolling = fd.integrate_incremental(rolling, table)
        assert _values(rolling) == _values(fd.integrate(tables[:i]))


def test_single_increment_cost(benchmark):
    """The interactive case: one more discovered table lands on a large
    existing result."""
    tables = _tables()
    fd = AliteFD()
    existing = fd.integrate(tables[:-1])

    result = benchmark(fd.integrate_incremental, existing, tables[-1])

    batch = fd.integrate(tables)
    print_header("E13 (one step)", "adding the 6th table to a 5-table result")
    print(f"  facts: {existing.num_rows} -> {result.num_rows}")
    assert _values(result) == _values(batch)
