"""E11 -- alignment ablation: what each evidence channel buys.

ALITE's holistic matching combines value overlap, KB semantics, headers and
hashed embeddings.  This bench measures pairwise-match F1 on a synthetic
integration set whose ground truth is known (columns generated from the
same concept must share an integration ID), ablating the knowledge base and
the headers, and sweeping the clustering threshold.
"""

from __future__ import annotations

import pytest

from repro.alignment import HolisticAligner, MatcherWeights
from repro.alignment.features import ColumnRef
from repro.datalake.synth import HEADER_SYNONYMS, SyntheticLakeBuilder

from conftest import print_header

_CANONICAL = {
    synonym: canonical
    for canonical, synonyms in HEADER_SYNONYMS.items()
    for synonym in synonyms
}


def _concept_of(header: str) -> str:
    return _CANONICAL.get(header, header)


def _ground_truth_pairs(tables):
    """All cross-table column pairs whose headers map to one concept."""
    refs = [
        (ColumnRef(t.name, c), _concept_of(c)) for t in tables for c in t.columns
    ]
    pairs = set()
    for i in range(len(refs)):
        for j in range(i + 1, len(refs)):
            (ref_a, concept_a), (ref_b, concept_b) = refs[i], refs[j]
            if ref_a.table != ref_b.table and concept_a == concept_b:
                pairs.add(tuple(sorted((ref_a, ref_b))))
    return pairs


@pytest.fixture(scope="module")
def alignment_workload():
    synth = SyntheticLakeBuilder(
        seed=31, rows_per_table=12, header_synonym_rate=0.5, null_rate=0.05
    ).build(num_unionable=4, num_joinable=4, num_distractors=0)
    tables = [synth.query.with_name("Q")] + synth.lake.tables()
    return tables, _ground_truth_pairs(tables)


def _f1(predicted, truth):
    if not predicted and not truth:
        return 1.0
    true_positive = len(predicted & truth)
    precision = true_positive / max(1, len(predicted))
    recall = true_positive / max(1, len(truth))
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def _pairs_of(alignment):
    return {tuple(sorted(pair)) for pair in alignment.matched_pairs()}


def test_full_matcher_f1(benchmark, alignment_workload):
    tables, truth = alignment_workload
    alignment = benchmark(HolisticAligner().align, tables)
    score = _f1(_pairs_of(alignment), truth)
    print_header("E11 (full)", f"pairwise match F1 = {score:.3f}")
    assert score >= 0.9


def test_kb_ablation(benchmark, alignment_workload):
    tables, truth = alignment_workload
    with_kb = _f1(_pairs_of(HolisticAligner().align(tables)), truth)
    without_kb = _f1(_pairs_of(HolisticAligner(kb=None).align(tables)), truth)

    print_header("E11 (KB ablation)", "semantic channel contribution")
    print(f"  with KB:    F1 = {with_kb:.3f}")
    print(f"  without KB: F1 = {without_kb:.3f}")
    assert with_kb >= without_kb  # semantics never hurt on this workload

    benchmark(HolisticAligner(kb=None).align, tables)


def test_header_ablation(benchmark, alignment_workload):
    tables, truth = alignment_workload
    no_header_weights = MatcherWeights(header=0.0)
    without_headers = _f1(
        _pairs_of(HolisticAligner(weights=no_header_weights).align(tables)), truth
    )
    full = _f1(_pairs_of(HolisticAligner().align(tables)), truth)

    print_header("E11 (header ablation)", "header channel contribution")
    print(f"  full matcher:     F1 = {full:.3f}")
    print(f"  headers disabled: F1 = {without_headers:.3f}")
    # Values + KB must carry most of the signal (data lakes can't trust
    # headers); headers still help on numeric rate columns.
    assert without_headers >= 0.5

    benchmark(HolisticAligner(weights=no_header_weights).align, tables)


@pytest.mark.parametrize("threshold", [0.15, 0.30, 0.60])
def test_threshold_sweep(benchmark, alignment_workload, threshold):
    tables, truth = alignment_workload
    alignment = benchmark(HolisticAligner(threshold=threshold).align, tables)
    score = _f1(_pairs_of(alignment), truth)
    print(f"\nE11 threshold={threshold:.2f}: F1={score:.3f}, ids={alignment.num_ids}")
    if threshold == 0.30:
        assert score >= 0.9  # the default sits at the sweet spot
