"""E3 -- Figures 7/8(a)/8(b): outer join vs Full Disjunction on the vaccine
tables.

Shape to reproduce: outer join yields 5 tuples and no tuple names J&J's
approver; FD yields 3 tuples including f13 = {t13, t15} = (J&J, FDA,
United States), with f12 keeping minimal provenance {t16}.
"""

from __future__ import annotations

from repro.analysis import compare_integrations, information_dominates
from repro.integration import AliteFD, OuterJoinIntegrator
from repro.table.values import is_null

from conftest import print_header


def test_outer_join_figure8a(benchmark, vaccine_tables):
    result = benchmark(OuterJoinIntegrator().integrate, vaccine_tables)

    print_header("E3 (Fig. 8a)", "outer join T4 ⟗ T5 ⟗ T6")
    print(result.to_display_table().to_pretty())

    assert result.num_rows == 5
    approver = result.column_index("Approver")
    vaccine = result.column_index("Vaccine")
    for row in result.rows:
        if row[vaccine] in ("JnJ", "J&J"):
            assert is_null(row[approver])  # the lost fact


def test_fd_figure8b(benchmark, vaccine_tables):
    result = benchmark(AliteFD().integrate, vaccine_tables)

    print_header("E3 (Fig. 8b)", "FD(T4, T5, T6) by ALITE")
    print(result.to_display_table().to_pretty())
    print()
    oj = OuterJoinIntegrator().integrate(vaccine_tables)
    print(compare_integrations([result, oj]).to_pretty())

    assert result.num_rows == 3
    assert result.find_fact(Vaccine="J&J", Approver="FDA") == frozenset({"t3", "t5"})
    assert result.find_fact(Vaccine="JnJ") == frozenset({"t6"})
    assert information_dominates(result, oj)
