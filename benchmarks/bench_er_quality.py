"""E14 -- ER quality with vs without good integration (quantifying Fig. 8).

A synthetic workload of alias-perturbed entities split Figure 7-style
across three tables with injected nulls.  ER runs over (a) the FD result
and (b) the outer-join result of the same integration set; predicted
clusters are mapped back to source TIDs and scored against gold pairwise
F1.  Expected shape: FD >= outer join, with the gap widening as inputs get
more incomplete -- outer-join fragments carry too few comparable attributes
to match (the paper's f9/f10 story, at scale).
"""

from __future__ import annotations

from repro.er import EntityResolver, cluster_metrics, make_er_workload
from repro.integration import AliteFD, OuterJoinIntegrator

from conftest import print_header


def _predicted_tid_clusters(integrated, er_result):
    """ER clusters of integrated rows -> clusters of source TIDs; TIDs that
    integration dropped (subsumed) become singletons (a consistent penalty
    for losing tuples)."""
    clusters = []
    covered: set[str] = set()
    row_tids = {f"f{i + 1}": tids for i, tids in enumerate(integrated.provenance)}
    for members in er_result.clusters:
        tids: set[str] = set()
        for member in members:
            tids.update(row_tids.get(member, ()))
        if tids:
            clusters.append(sorted(tids))
            covered.update(tids)
    for tid in integrated.tid_sources:
        if tid not in covered:
            clusters.append([tid])
    return clusters


def _score(workload, integrator):
    integrated = integrator.integrate(workload.tables)
    er_result = EntityResolver().resolve_table(integrated)
    predicted = _predicted_tid_clusters(integrated, er_result)
    return cluster_metrics(predicted, workload.gold_clusters)


def test_fd_beats_outer_join_for_er(benchmark):
    workload = make_er_workload(num_entities=8, seed=2, null_rate=0.4)

    fd_metrics = _score(workload, AliteFD())
    oj_metrics = _score(workload, OuterJoinIntegrator())

    print_header("E14", "ER pairwise F1 over FD vs outer-join integration")
    print(f"  FD:         P={fd_metrics.precision:.2f} R={fd_metrics.recall:.2f} "
          f"F1={fd_metrics.f1:.2f}")
    print(f"  outer join: P={oj_metrics.precision:.2f} R={oj_metrics.recall:.2f} "
          f"F1={oj_metrics.f1:.2f}")

    assert fd_metrics.f1 >= oj_metrics.f1
    assert fd_metrics.recall > oj_metrics.recall  # FD connects the fragments

    benchmark(_score, workload, AliteFD())


def test_null_rate_widens_the_gap(benchmark):
    print_header("E14 (null sweep)", "F1 gap vs input completeness")
    print(f"{'null rate':>10} {'fd F1':>8} {'oj F1':>8}")
    gaps = []
    for null_rate in (0.0, 0.2, 0.4):
        workload = make_er_workload(num_entities=8, seed=5, null_rate=null_rate)
        fd_metrics = _score(workload, AliteFD())
        oj_metrics = _score(workload, OuterJoinIntegrator())
        print(f"{null_rate:>10.1f} {fd_metrics.f1:>8.2f} {oj_metrics.f1:>8.2f}")
        gaps.append(fd_metrics.f1 - oj_metrics.f1)
    assert all(gap >= 0 for gap in gaps)
    assert gaps[-1] > gaps[0]  # incompleteness widens FD's advantage

    workload = make_er_workload(num_entities=8, seed=5, null_rate=0.4)
    benchmark(_score, workload, OuterJoinIntegrator())
