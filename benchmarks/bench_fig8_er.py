"""E4 -- Figures 8(c)/8(d): entity resolution as the downstream judge.

Shape to reproduce: ER over the FD result resolves to 2 entities and knows
the J&J vaccine's approver; ER over the outer-join result leaves 4 entities,
cannot resolve the (JnJ, ±, ⊥) / (⊥, ±, USA) fragments, and never learns
the approver.
"""

from __future__ import annotations

from repro.er import EntityResolver
from repro.integration import AliteFD, OuterJoinIntegrator

from conftest import print_header


def test_er_over_fd_figure8d(benchmark, vaccine_tables):
    fd = AliteFD().integrate(vaccine_tables)
    result = benchmark(EntityResolver().resolve_table, fd)

    print_header("E4 (Fig. 8d)", "entity resolution over the FD result")
    print(result.entities.to_pretty())
    print(f"clusters: {result.clusters}")

    assert result.num_entities == 2
    vaccine = result.entities.column_index("Vaccine")
    approver = result.entities.column_index("Approver")
    jnj = [r for r in result.entities.rows if r[vaccine] in ("J&J", "JnJ")]
    assert jnj and jnj[0][approver] == "FDA"


def test_er_over_outer_join_figure8c(benchmark, vaccine_tables):
    oj = OuterJoinIntegrator().integrate(vaccine_tables)
    result = benchmark(EntityResolver().resolve_table, oj)

    print_header("E4 (Fig. 8c)", "entity resolution over the outer-join result")
    print(result.entities.to_pretty())
    print(f"clusters: {result.clusters}")

    assert result.num_entities == 4  # paper's Figure 8(c) row count
    approver = result.entities.column_index("Approver")
    vaccine = result.entities.column_index("Vaccine")
    for row in result.entities.rows:
        if row[vaccine] in ("J&J", "JnJ"):
            assert row[approver] != "FDA"  # the approver stays unknown
