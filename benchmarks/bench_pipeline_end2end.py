"""E7 -- Figure 1 / Sec. 3.1: the full pipeline on a data lake.

Times the three stages separately (offline index build, discovery, align +
integrate) over the shared synthetic lake, and checks the end-to-end shape:
the union of all discoverers' results forms the integration set, and the
integrated table connects facts across tables.
"""

from __future__ import annotations

import pytest

from repro import Dialite
from repro.analysis import fact_coverage

from conftest import print_header


@pytest.fixture(scope="module")
def fitted(bench_lake):
    pipeline = Dialite(bench_lake.lake).fit()
    return pipeline, bench_lake


def test_offline_index_build(benchmark, bench_lake):
    build = lambda: Dialite(bench_lake.lake).fit()
    pipeline = benchmark(build)

    print_header("E7 (Sec. 3.1)", "offline index construction")
    for name, seconds in pipeline.index.build_seconds.items():
        print(f"  {name:<14} {seconds * 1000:8.2f} ms")
    assert set(pipeline.index.build_seconds) == {"santos", "lsh_ensemble", "josie"}


def test_discovery_stage(benchmark, fitted):
    pipeline, synth = fitted
    query = synth.query.with_name("Q")
    outcome = benchmark(pipeline.discover, query, 6, "City")

    print_header("E7 (discover)", "union of all discoverers = integration set")
    print(outcome.summary().to_pretty(10))

    assert outcome.integration_set[0].name == "Q"
    assert len(outcome.integration_set) > 1
    relevant = synth.truth.relevant()
    assert {r.table_name for r in outcome.merged[:6]} & relevant


def test_integrate_stage(benchmark, fitted):
    pipeline, synth = fitted
    query = synth.query.with_name("Q")
    outcome = pipeline.discover(query, k=6, query_column="City")
    integrated = benchmark(pipeline.integrate, outcome)

    coverage = fact_coverage(integrated.provenance)
    print_header("E7 (integrate)", "align + FD over the integration set")
    print(
        f"  {integrated.num_rows} facts x {integrated.num_columns} attrs, "
        f"{coverage['merged_tuples']} merged facts, "
        f"mean {coverage['mean_sources']:.2f} sources/fact"
    )
    assert coverage["merged_tuples"] > 0  # discovery found joinable content
