"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure/example) or one
claim-level experiment from DESIGN.md's index (E1-E11).  Timing comes from
pytest-benchmark; each bench also prints the paper-style rows it reproduces
so `pytest benchmarks/ --benchmark-only -s` reads like the evaluation
section.  EXPERIMENTS.md records paper-vs-measured for all of them.
"""

from __future__ import annotations

import pytest

from repro.datalake.fixtures import covid_integration_set, vaccine_integration_set
from repro.datalake.synth import SyntheticLakeBuilder


@pytest.fixture
def covid_tables():
    return covid_integration_set()


@pytest.fixture
def vaccine_tables():
    return vaccine_integration_set()


@pytest.fixture(scope="session")
def bench_lake():
    """One medium synthetic lake shared by the discovery benchmarks."""
    return SyntheticLakeBuilder(
        seed=99, rows_per_table=14, null_rate=0.08, header_synonym_rate=0.4
    ).build(num_unionable=6, num_joinable=6, num_distractors=14)


def print_header(experiment: str, claim: str) -> None:
    print(f"\n{'=' * 72}\n{experiment}: {claim}\n{'=' * 72}")
