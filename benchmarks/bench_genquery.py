"""E6 -- Figure 5: prompt-driven query-table generation (the GPT-3
substitute).

The paper's prompt asks for a COVID table with 5 rows and 5 columns; the
generator must route the prompt, honor the shape, stay deterministic per
seed, and produce a table the discovery stage accepts.
"""

from __future__ import annotations

from repro.genquery import generate_query_table, match_template

from conftest import print_header

_PROMPT = "generate a query table about COVID-19 cases that has 5 columns and 5 rows"


def test_fig5_generation(benchmark):
    table = benchmark(generate_query_table, _PROMPT, seed=0)

    print_header("E6 (Fig. 5)", f"prompt: {_PROMPT!r}")
    print(table.to_pretty())

    assert table.shape == (5, 5)
    assert match_template(_PROMPT).topic == "covid"
    assert "City" in table.columns
    again = generate_query_table(_PROMPT, seed=0)
    assert table.equals(again)  # deterministic, like a cached GPT-3 reply


def test_generation_throughput(benchmark):
    """Bulk generation cost (the demo generates tables interactively)."""

    def generate_batch():
        return [
            generate_query_table("covid cases", rows=8, seed=seed) for seed in range(20)
        ]

    tables = benchmark(generate_batch)
    assert len({t.rows[0] for t in tables}) > 1  # seeds actually vary content
