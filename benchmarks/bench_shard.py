"""Sharded scatter-gather discovery: 4-shard parallel fan-out vs 1 shard.

The claims under test (ISSUE 8 acceptance):

1. **Latency.**  On a 20k-table synthetic lake whose queries retrieve
   (and therefore score) thousands of candidates, per-query discover
   latency through a 4-shard :class:`repro.shard.ShardedLakeIndex`
   (process executor, one warm worker per shard) has **p95 >= 2.5x
   lower** than the same queries through a 1-shard sharded store (the
   single-store pipeline shape, thread executor -- no fan-out
   parallelism).  The latency metric is hardware-aware: with
   ``>= shards`` usable cores the end-to-end wall p95 is gated; on a
   starved host (e.g. a 1-core CI container, where four concurrent
   workers physically cannot beat one) the gate moves to the
   **critical-path p95** -- per query, the max over shards of each
   worker's *own* CPU seconds (summed across scatter rounds), which is
   the latency a one-core-per-shard deployment observes and is immune
   to siblings being descheduled onto the same core.  Both numbers are
   always reported.
2. **Byte identity.**  Every query's per-discoverer top-k from the
   4-shard scatter-gather is identical -- (table, score, discoverer),
   result for result -- to the 1-shard answer.  This is asserted at
   every scale, including ``--smoke``.
3. **One-shard rewrite.**  Ingesting a single table into the 4-shard
   store bumps exactly one shard's version; the other shards' versions
   are untouched, so their persisted indexes stay current and a
   warm-start refits only the home shard.

Two entry points:

* standalone -- ``python benchmarks/bench_shard.py [--smoke]
  [--json out.json] [--check]``; ``--smoke`` is what ``make ci`` runs:
  small scale (the per-query work is too light for the fan-out to win,
  so no speed gate), with the identity and one-shard-rewrite
  assertions plus an end-to-end process-executor exercise;
* ``make bench-shard`` runs full scale with the >= 2.5x p95 gate.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datalake import DataLake, seeds  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs.export import metrics_document, snapshot_identity  # noqa: E402
from repro.discovery import (  # noqa: E402
    JosieJoinSearch,
    LSHEnsembleJoinSearch,
    SantosUnionSearch,
)
from repro.discovery.santos import SantosConfig  # noqa: E402
from repro.shard import ShardedLakeIndex, ShardedLakeStore  # noqa: E402
from repro.table import MISSING, Table  # noqa: E402

K = 10
COLUMN = "key"


# ----------------------------------------------------------------------
# Workload: join keys drawn from a deliberately *small* vocabulary so
# every query key's posting list spans many tables -- the scoring set is
# thousands of candidates, which is the regime where dividing the lake
# across shard workers pays.  (Contrast bench_candidates, whose wide
# vocabulary keeps retrieval tiny to showcase the engine's pruning.)
# ----------------------------------------------------------------------
def make_workload(
    num_tables: int,
    num_queries: int = 6,
    rows: int = 16,
    seed: int = 29,
    vocab: int | None = None,
) -> tuple[DataLake, list[Table], Table]:
    rng = random.Random(seed)
    cities = list(seeds.CITIES)
    if vocab is None:
        # ~1/3 to 1/2 of the lake shares >= 1 key with any query: the
        # scoring set is thousands of tables, so the divisible per-query
        # work dwarfs the per-shard constant costs under measurement.
        vocab = max(64, num_tables // 64)

    def random_rows(keys: list[str]) -> list[tuple]:
        return [
            (
                key,
                rng.choice(cities),
                rng.randrange(10_000) if rng.random() > 0.05 else MISSING,
            )
            for key in keys
        ]

    def fresh_keys() -> list[str]:
        return [f"e{rng.randrange(vocab)}" for _ in range(rows)]

    queries = [
        Table(
            ["key", "city", "score"],
            [(key, rng.choice(cities), round(rng.random(), 4)) for key in fresh_keys()],
            name=f"bench_query_{q}",
        )
        for q in range(num_queries)
    ]
    tables = [
        Table(["key", "city", f"metric_{t % 7}"], random_rows(fresh_keys()),
              name=f"t{t:05d}")
        for t in range(num_tables)
    ]
    newcomer = Table(
        ["key", "city", "late_metric"], random_rows(fresh_keys()), name="zz_late"
    )
    return DataLake(tables), queries, newcomer


def roster():
    """JOSIE + LSH Ensemble + SANTOS (KB synthesis off: minting a KB from
    20k tables is an offline cost unrelated to the fan-out under test,
    and both sides of the comparison share whatever roster runs)."""
    return [
        JosieJoinSearch(),
        LSHEnsembleJoinSearch(),
        SantosUnionSearch(config=SantosConfig(synthesize_kb=False)),
    ]


def build_sharded(root: Path, lake: DataLake, num_shards: int, executor: str):
    store = ShardedLakeStore.create(root, num_shards=num_shards)
    store.ingest(lake)
    index = ShardedLakeIndex(store, roster(), executor=executor).build()
    return store, index


def comparable(answer) -> dict:
    return {
        name: [(r.table_name, round(r.score, 9), r.discoverer) for r in results]
        for name, results in answer.items()
    }


def run_queries(index: ShardedLakeIndex, queries: list[Table], repeats: int):
    """(wall latencies, critical-path latencies, last round's answers).

    One untimed warm-up round first: process workers hydrate their shard
    index lazily on first use, and both configurations deserve warm
    caches -- the claim is about steady-state query latency.  Alongside
    the end-to-end wall clock, each call's critical path (max over
    shards of the shard worker's own CPU seconds, summed across scatter
    rounds) is recorded -- the number that matters when the host has
    fewer cores than shards and the workers merely timeshare.
    """
    answers = [comparable(index.search(q, k=K, query_column=COLUMN)) for q in queries]
    latencies: list[float] = []
    critical: list[float] = []
    for _ in range(repeats):
        round_answers = []
        for query in queries:
            start = time.perf_counter()
            answer = index.search(query, k=K, query_column=COLUMN)
            latencies.append(time.perf_counter() - start)
            critical.append(index.last_critical_cpu_seconds)
            round_answers.append(comparable(answer))
        if round_answers != answers:
            raise AssertionError("sharded answers changed between repeats")
    return latencies, critical, answers


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def run_suite(
    num_tables: int, repeats: int, shards: int = 4, vocab: int | None = None
) -> dict:
    lake, queries, newcomer = make_workload(num_tables, vocab=vocab)
    base = Path(tempfile.mkdtemp(prefix="bench_shard_"))
    try:
        # 1 shard = the single-store pipeline shape (thread executor: no
        # fan-out, no IPC); N shards = parallel scatter-gather workers.
        _store_1, index_1 = build_sharded(base / "one", lake, 1, executor="threads")
        store_n, index_n = build_sharded(base / "many", lake, shards, executor="processes")
        try:
            lat_1, crit_1, answers_1 = run_queries(index_1, queries, repeats)
            lat_n, crit_n, answers_n = run_queries(index_n, queries, repeats)
        finally:
            index_1.close()
            index_n.close()

        # One-shard rewrite: a single ingest moves exactly one version.
        before = store_n.shard_versions()
        home = store_n.shard_of(newcomer.name)
        store_n.ingest({newcomer.name: newcomer}, prune=False)
        after = store_n.shard_versions()
        bumped = [i for i in range(shards) if after[i] != before[i]]

        p95_1 = percentile(lat_1, 0.95)
        p95_n = percentile(lat_n, 0.95)
        cp95_1 = percentile(crit_1, 0.95)
        cp95_n = percentile(crit_n, 0.95)
        try:
            usable_cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux hosts
            usable_cpus = os.cpu_count() or 1
        return {
            "suite": "shard",
            "tables": num_tables,
            "shards": shards,
            "queries": len(queries),
            "repeats": repeats,
            "k": K,
            "usable_cpus": usable_cpus,
            "gate_mode": "wall" if usable_cpus >= shards else "critical_path",
            "one_shard_p95_ms": round(p95_1 * 1e3, 2),
            "sharded_p95_ms": round(p95_n * 1e3, 2),
            "one_shard_mean_ms": round(sum(lat_1) / len(lat_1) * 1e3, 2),
            "sharded_mean_ms": round(sum(lat_n) / len(lat_n) * 1e3, 2),
            "p95_speedup": round(p95_1 / max(p95_n, 1e-12), 2),
            "one_shard_critical_p95_ms": round(cp95_1 * 1e3, 2),
            "sharded_critical_p95_ms": round(cp95_n * 1e3, 2),
            "critical_p95_speedup": round(cp95_1 / max(cp95_n, 1e-12), 2),
            "identical": answers_n == answers_1,
            "ingest_bumped_shards": bumped,
            "ingest_home_shard": home,
            "one_shard_rewrite": bumped == [home],
        }
    finally:
        shutil.rmtree(base, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tables", type=int, default=20_000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="400 tables, identity + one-shard-rewrite asserts, "
                        "no speed gate (the `make ci` mode)")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument("--vocab", type=int, default=None,
                        help="override the join-key vocabulary size "
                        "(smaller = denser posting lists = heavier scoring)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the sharded fan-out's p95 beats the "
                        "1-shard pipeline by >= 2.5x (full scale only; "
                        "correctness assertions always run)")
    args = parser.parse_args(argv)

    num_tables = 400 if args.smoke else args.tables
    repeats = 2 if args.smoke else args.repeats
    results = run_suite(num_tables, repeats, shards=args.shards, vocab=args.vocab)
    # Process-wide metrics in the exporter's document envelope, so the
    # .benchmarks/ record reads like a live `repro obs export` sink line.
    results["telemetry"] = metrics_document(
        obs_metrics.global_registry().snapshot(),
        snapshot_identity("bench-shard"),
    )

    print(
        f"{results['tables']} tables, {results['shards']} shards, "
        f"{results['queries']} queries x {results['repeats']} repeats: "
        f"1-shard p95 {results['one_shard_p95_ms']}ms, "
        f"sharded p95 {results['sharded_p95_ms']}ms "
        f"-> {results['p95_speedup']}x wall; critical path "
        f"{results['one_shard_critical_p95_ms']}ms vs "
        f"{results['sharded_critical_p95_ms']}ms "
        f"-> {results['critical_p95_speedup']}x "
        f"(identical: {results['identical']}, "
        f"single ingest bumped shards {results['ingest_bumped_shards']} "
        f"of {results['shards']}, {results['usable_cpus']} usable cpus "
        f"-> gate: {results['gate_mode']})"
    )
    print(json.dumps(results))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results, indent=2), encoding="utf-8")
        print(f"written: {args.json}")

    failures = []
    if not results["identical"]:
        failures.append("sharded top-k differs from the 1-shard pipeline")
    if not results["one_shard_rewrite"]:
        failures.append(
            f"single-table ingest touched shards {results['ingest_bumped_shards']} "
            f"(home: {results['ingest_home_shard']})"
        )
    if args.check and not args.smoke:
        # Hardware-aware gate: end-to-end wall p95 when the host can
        # actually run the workers concurrently; critical-path p95 (max
        # per-shard own-CPU seconds) when cores < shards, where wall
        # speedup is physically unattainable and would only measure the
        # scheduler, not the work division.
        if results["gate_mode"] == "wall":
            gated = results["p95_speedup"]
            label = "wall p95"
        else:
            gated = results["critical_p95_speedup"]
            label = (
                f"critical-path p95 ({results['usable_cpus']} usable cpus < "
                f"{results['shards']} shards)"
            )
        if gated < 2.5:
            failures.append(f"{label} speedup {gated}x < 2.5x")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    if args.check and not args.smoke:
        print(f"acceptance ok: 4-shard scatter-gather {label} speedup {gated}x "
              ">= 2.5x vs the 1-shard pipeline, byte-identical top-k, "
              "one-shard rewrite on single-table ingest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
