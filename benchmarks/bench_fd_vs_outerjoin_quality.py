"""E9 -- the semantics claim: FD maximizes connections, outer join does not.

On synthetic integration sets: (a) FD's output subsumes every outer-join
tuple (information dominance); (b) outer join's output varies across fold
orders while FD's does not (associativity); (c) FD merges strictly more
facts.  These are the measurable versions of the paper's Sec. 1 argument.
"""

from __future__ import annotations

from itertools import permutations

from repro.analysis import (
    IntegrationReport,
    information_dominates,
    order_variability,
)
from repro.datalake.synth import build_integration_set
from repro.integration import AliteFD, OuterJoinIntegrator, order_sensitivity

from conftest import print_header


def _tables(seed: int = 5):
    return build_integration_set(
        num_tables=4,
        rows_per_table=40,
        num_attributes=6,
        attributes_per_table=3,
        key_pool_size=60,
        null_rate=0.15,
        seed=seed,
    )


def test_information_dominance(benchmark):
    tables = _tables()
    fd = AliteFD().integrate(tables)
    oj = OuterJoinIntegrator().integrate(tables)

    dominates = benchmark(information_dominates, fd, oj)

    fd_report = IntegrationReport.from_integrated(fd)
    oj_report = IntegrationReport.from_integrated(oj)
    print_header("E9 (dominance)", "every outer-join tuple is subsumed by FD")
    print(f"  FD:         {fd_report.tuples} tuples, {fd_report.merged_tuples} merged, "
          f"completeness {fd_report.completeness}")
    print(f"  outer join: {oj_report.tuples} tuples, {oj_report.merged_tuples} merged, "
          f"completeness {oj_report.completeness}")

    assert dominates
    assert not information_dominates(oj, fd)
    assert fd_report.completeness >= oj_report.completeness


def test_order_sensitivity(benchmark):
    tables = _tables(seed=9)

    def run_all_orders():
        return [result for _, result in order_sensitivity(tables, max_orders=24)]

    oj_results = benchmark(run_all_orders)
    oj_report = order_variability(oj_results)

    fd_results = [AliteFD().integrate(list(p)) for p in permutations(tables)]
    fd_report = order_variability(fd_results)

    print_header("E9 (associativity)", "distinct outputs across fold orders")
    print(f"  outer join: {oj_report['distinct_outputs']} distinct outputs over "
          f"{oj_report['orders_tried']} orders "
          f"(tuples {oj_report['min_tuples']}..{oj_report['max_tuples']})")
    print(f"  FD:         {fd_report['distinct_outputs']} distinct output over "
          f"{fd_report['orders_tried']} orders")

    assert oj_report["distinct_outputs"] > 1
    assert fd_report["distinct_outputs"] == 1


def test_null_rate_sweep(benchmark):
    """More input nulls -> bigger FD advantage (incomplete tuples are where
    outer join loses facts)."""
    print_header("E9 (null sweep)", "merged facts vs input null rate")
    print(f"{'null rate':>10} {'fd merged':>10} {'oj merged':>10}")
    gaps = []
    for null_rate in (0.0, 0.1, 0.25):
        tables = build_integration_set(
            num_tables=4, rows_per_table=30, num_attributes=6,
            attributes_per_table=3, key_pool_size=45, null_rate=null_rate, seed=13,
        )
        fd = IntegrationReport.from_integrated(AliteFD().integrate(tables))
        oj = IntegrationReport.from_integrated(OuterJoinIntegrator().integrate(tables))
        print(f"{null_rate:>10.2f} {fd.merged_tuples:>10} {oj.merged_tuples:>10}")
        gaps.append(fd.merged_tuples - oj.merged_tuples)
    assert all(gap >= 0 for gap in gaps)

    benchmark(AliteFD().integrate, _tables(seed=13))
