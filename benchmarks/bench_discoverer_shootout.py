"""E15 -- six-way discoverer shoot-out on the labeled synthetic lake.

All built-in discoverers (the paper's SANTOS / LSH Ensemble / JOSIE plus
the Starmie/TUS/COCOA-style reproductions) evaluated with the ranking
metrics of :mod:`repro.discovery.evaluation`: average precision against the
relevance class each discoverer targets.  Expected shape: every union-style
engine beats chance on unionable truth, every join-style engine on joinable
truth, and SANTOS/JOSIE lead their classes on this lake.
"""

from __future__ import annotations

import pytest

from repro.discovery import (
    CocoaJoinSearch,
    JosieJoinSearch,
    LSHEnsembleJoinSearch,
    SantosUnionSearch,
    StarmieUnionSearch,
    TusUnionSearch,
    evaluate_discoverer,
)

from conftest import print_header

_UNION_ENGINES = [SantosUnionSearch, TusUnionSearch, StarmieUnionSearch]
_JOIN_ENGINES = [JosieJoinSearch, LSHEnsembleJoinSearch, CocoaJoinSearch]


@pytest.fixture(scope="module")
def reports(bench_lake):
    query = bench_lake.query.with_name("Q")
    collected = {}
    for engine_class in _UNION_ENGINES:
        collected[engine_class.name] = evaluate_discoverer(
            engine_class(), bench_lake.lake, query,
            relevant=bench_lake.truth.unionable, ks=(1, 3, 6),
            query_column="City",
        )
    for engine_class in _JOIN_ENGINES:
        collected[engine_class.name] = evaluate_discoverer(
            engine_class(), bench_lake.lake, query,
            relevant=bench_lake.truth.joinable, ks=(1, 3, 6),
            query_column="City",
        )
    return collected


def test_shootout_table(benchmark, reports, bench_lake):
    print_header("E15", "average precision per discoverer vs its target class")
    print(f"{'discoverer':<14} {'target':<10} {'AP':>6} {'P@3':>6} {'R@6':>6}")
    for name, report in reports.items():
        target = "unionable" if name in {e.name for e in _UNION_ENGINES} else "joinable"
        print(
            f"{name:<14} {target:<10} {report.average_precision:>6.2f} "
            f"{report.precision[3]:>6.2f} {report.recall[6]:>6.2f}"
        )

    # Shape assertions: each engine clearly beats a random ranking (the
    # lake is 6 relevant / 26 tables, so random AP ~ 0.25).
    for name, report in reports.items():
        assert report.average_precision > 0.4, name
    # The paper's default engines lead their classes on this lake.
    assert reports["santos"].average_precision >= reports["starmie"].average_precision
    assert reports["josie"].average_precision >= reports["cocoa"].average_precision

    query = bench_lake.query.with_name("Q")
    benchmark(
        evaluate_discoverer,
        SantosUnionSearch(), bench_lake.lake, query,
        bench_lake.truth.unionable, (1, 3, 6), "City",
    )


def test_all_discoverers_pipeline(benchmark, bench_lake):
    """The convenience constructor wires all six into one pipeline."""
    from repro import Dialite

    pipeline = Dialite.with_all_discoverers(bench_lake.lake).fit()
    query = bench_lake.query.with_name("Q")
    outcome = benchmark(pipeline.discover, query, 6, "City")

    assert set(outcome.per_discoverer) == {
        "santos", "lsh_ensemble", "josie", "starmie", "tus", "cocoa",
    }
    found = set(outcome.discovered_names)
    assert bench_lake.truth.relevant() <= found | bench_lake.truth.distractors
