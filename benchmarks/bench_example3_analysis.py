"""E2 -- Example 3: aggregation and correlation over the integrated table.

Paper numbers: Boston lowest / Toronto highest vaccination; Pearson
correlations 0.16 (vaccination vs death rate) and 0.9 (cases vs
vaccination).  Both depend on parsing "63%", "1.4M", "263k" and on
pairwise-complete null handling.
"""

from __future__ import annotations

import pytest

from repro.alignment import HolisticAligner
from repro.analysis import column_correlation, extreme
from repro.integration import AliteFD

from conftest import print_header


@pytest.fixture
def integrated(covid_tables):
    alignment = HolisticAligner().align(covid_tables)
    return AliteFD().integrate(alignment.apply(covid_tables))


def _analyze(table):
    return {
        "lowest": extreme(table, "Vaccination Rate", "City", "min"),
        "highest": extreme(table, "Vaccination Rate", "City", "max"),
        "vacc_death": column_correlation(table, "Vaccination Rate", "Death Rate"),
        "cases_vacc": column_correlation(table, "Total Cases", "Vaccination Rate"),
    }


def test_example3_numbers(benchmark, integrated):
    results = benchmark(_analyze, integrated)

    print_header("E2 (Example 3)", "analysis over FD(T1, T2, T3)")
    print(f"lowest vaccination:  {results['lowest']}   (paper: Boston)")
    print(f"highest vaccination: {results['highest']}  (paper: Toronto)")
    print(f"corr(vacc, death) = {results['vacc_death'][0]:.4f}  (paper: 0.16)")
    print(f"corr(cases, vacc) = {results['cases_vacc'][0]:.4f}  (paper: 0.9)")

    assert results["lowest"] == ("Boston", 62.0)
    assert results["highest"] == ("Toronto", 83.0)
    assert results["vacc_death"][0] == pytest.approx(0.16, abs=0.005)
    assert results["cases_vacc"][0] == pytest.approx(0.90, abs=0.005)
