"""E5 -- Figure 4 / Example 4: plugging a user-defined discovery algorithm
into the pipeline, and the cost of the brute-force fallback it runs on.

The wrapped similarity (inner-join size) must rank the genuinely joinable
table first, and registration must be first-class (selectable by name,
fitted automatically).
"""

from __future__ import annotations

from repro import Dialite
from repro.datalake.fixtures import (
    covid_joinable_table,
    covid_query_table,
    covid_unionable_table,
)
from repro.table import Table, ops

from conftest import print_header


def _inner_join_similarity(df1: Table, df2: Table) -> float:
    shared = [c for c in df1.columns if df2.has_column(c)]
    if not shared or df1.num_rows == 0:
        return 0.0
    return ops.inner_join(df1, df2, on=shared).num_rows / df1.num_rows


def test_user_defined_discovery(benchmark, bench_lake):
    pipeline = Dialite(bench_lake.lake).fit()
    pipeline.add_discoverer(_inner_join_similarity, name="inner_join_search")
    query = bench_lake.query.with_name("Q")

    results = benchmark(
        lambda: pipeline.discover(query, k=5, discoverer_names=["inner_join_search"])
    )

    print_header("E5 (Fig. 4)", "user-defined inner-join discovery, brute force")
    print(results.summary().to_pretty())

    # Inner-join similarity is a *joinable* search: unionable tables share
    # the whole schema but disjoint rows, so they join to nothing, while
    # joinable tables overlap on the City key.
    found = set(results.discovered_names)
    assert found & bench_lake.truth.joinable


def test_fig4_on_paper_tables(benchmark):
    query = covid_query_table()
    lake = {"T2": covid_unionable_table(), "T3": covid_joinable_table()}
    pipeline = Dialite(lake, discoverers=[]).fit()
    pipeline.add_discoverer(_inner_join_similarity, name="inner_join_search")

    outcome = benchmark(lambda: pipeline.discover(query, k=2))
    top = outcome.per_discoverer["inner_join_search"][0]

    print_header("E5 (Example 4)", "inner-join similarity on T1 vs lake {T2, T3}")
    print(outcome.summary().to_pretty())

    assert top.table_name == "T3"  # Berlin + Barcelona join back
